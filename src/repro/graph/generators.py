"""Reference graph generators (non-power-law).

The paper's proxies are power-law graphs (see :mod:`repro.powerlaw`);
these classical topologies complement them for validation, tests and
sensitivity studies — e.g. measuring how CCR estimates transfer to inputs
that do *not* follow a power law, or exercising partitioners on known
extremal structures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, make_rng

__all__ = [
    "erdos_renyi_graph",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
]


def erdos_renyi_graph(
    num_vertices: int, avg_degree: float, seed: SeedLike = 0
) -> DiGraph:
    """G(n, m)-style uniform random digraph with ``n * avg_degree`` edges.

    The degree distribution is binomial — the anti-power-law control case.
    Self loops are excluded; parallel edges may occur (as in natural edge
    streams).
    """
    if num_vertices < 2:
        raise GraphError("erdos_renyi_graph needs at least 2 vertices")
    if avg_degree <= 0:
        raise GraphError("avg_degree must be > 0")
    rng = make_rng(seed)
    m = int(round(num_vertices * avg_degree))
    src = rng.integers(0, num_vertices, size=m, dtype=np.int64)
    # Draw targets over n-1 slots and skip the source to exclude loops.
    offset = rng.integers(1, num_vertices, size=m, dtype=np.int64)
    dst = (src + offset) % num_vertices
    return DiGraph(num_vertices, src, dst)


def ring_graph(num_vertices: int) -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``.

    Diameter ``n - 1``: the worst case for label-propagation supersteps.
    """
    if num_vertices < 2:
        raise GraphError("ring_graph needs at least 2 vertices")
    src = np.arange(num_vertices, dtype=np.int64)
    return DiGraph(num_vertices, src, (src + 1) % num_vertices)


def star_graph(num_leaves: int, inward: bool = False) -> DiGraph:
    """Hub 0 connected to ``num_leaves`` leaves.

    The extreme-skew case: one vertex touches every edge, so vertex-cut
    quality (hub mirror count) is maximally stressed.

    Parameters
    ----------
    inward:
        Edges point leaf→hub instead of hub→leaf.
    """
    if num_leaves < 1:
        raise GraphError("star_graph needs at least 1 leaf")
    hub = np.zeros(num_leaves, dtype=np.int64)
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    if inward:
        return DiGraph(num_leaves + 1, leaves, hub)
    return DiGraph(num_leaves + 1, hub, leaves)


def complete_graph(num_vertices: int) -> DiGraph:
    """All ordered pairs ``(u, v), u != v`` — maximum density."""
    if num_vertices < 2:
        raise GraphError("complete_graph needs at least 2 vertices")
    u, v = np.meshgrid(
        np.arange(num_vertices, dtype=np.int64),
        np.arange(num_vertices, dtype=np.int64),
        indexing="ij",
    )
    keep = u != v
    return DiGraph(num_vertices, u[keep], v[keep])


def grid_graph(rows: int, cols: int) -> DiGraph:
    """2-D lattice with east and south edges — uniform low degree.

    A planar, hub-free counterpoint: every partitioner should achieve a
    near-perfect edge balance and low replication here.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid_graph needs positive dimensions")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    east_src = ids[:, :-1].ravel()
    east_dst = ids[:, 1:].ravel()
    south_src = ids[:-1, :].ravel()
    south_dst = ids[1:, :].ravel()
    return DiGraph(
        rows * cols,
        np.concatenate([east_src, south_src]),
        np.concatenate([east_dst, south_dst]),
    )
