"""Stand-ins for the paper's evaluation graphs (Table II).

The paper evaluates on four SNAP graphs — ``amazon`` (co-purchase),
``citation`` (patent citations), ``social_network`` (LiveJournal) and
``wiki`` (wiki talk) — plus three synthetic proxies.  SNAP downloads are
not available offline, so each real graph is replaced by a *synthetic
stand-in* generated with:

* the same vertex count (scaled by a user-chosen factor so experiments fit
  a single-core container), and
* the same average degree ``|E|/|V|`` — which, via the paper's own Eq. 7,
  pins the power-law exponent alpha.

CCR estimation accuracy and partition quality depend on the degree
distribution and density of the input, not on the identity of individual
edges, so the stand-ins exercise the same code paths (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
 

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table II.

    ``paper_vertices`` / ``paper_edges`` are the published full-scale
    counts; :func:`load_dataset` scales the vertex count and preserves the
    average degree.
    """

    name: str
    paper_vertices: int
    paper_edges: int
    footprint_mb: float
    kind: str  # "real" (SNAP stand-in) or "synthetic" (paper's own proxies)
    alpha: float = None  # fixed for the paper's synthetic proxies; else solved
    degree_seed: int = 0

    @property
    def average_degree(self) -> float:
        return self.paper_edges / self.paper_vertices


# Table II of the paper.  The synthetic proxies' alphas are published
# (1.95 / 2.1 / 2.25); the real graphs' alphas are recovered from |E|/|V|
# by the Newton solver, exactly as the paper's own flow does.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("amazon", 403_394, 3_387_388, 46.0, "real", degree_seed=11),
        DatasetSpec("citation", 3_774_768, 16_518_948, 260.0, "real", degree_seed=12),
        DatasetSpec(
            "social_network", 4_847_571, 68_993_773, 1100.0, "real", degree_seed=13
        ),
        DatasetSpec("wiki", 2_394_385, 5_021_410, 64.0, "real", degree_seed=14),
        DatasetSpec(
            "synthetic_one", 3_200_000, 42_011_862, 1100.0, "synthetic", 1.95, 21
        ),
        DatasetSpec(
            "synthetic_two", 3_200_000, 15_962_905, 410.0, "synthetic", 2.1, 22
        ),
        DatasetSpec(
            "synthetic_three", 3_200_000, 7_061_503, 181.0, "synthetic", 2.25, 23
        ),
    ]
}


def dataset_names(kind: str = None) -> Tuple[str, ...]:
    """Names of registered datasets, optionally filtered by kind."""
    if kind is not None and kind not in ("real", "synthetic"):
        raise ValueError(f"kind must be 'real' or 'synthetic', got {kind!r}")
    return tuple(
        name for name, spec in DATASETS.items() if kind is None or spec.kind == kind
    )


def resolve_alpha(spec: DatasetSpec, max_degree: int = None) -> float:
    """The exponent used to generate a dataset stand-in.

    Synthetic proxies carry their published alpha.  Real-graph stand-ins
    solve Eq. 7 for the published average degree ``|E|/|V|`` at the
    truncation the stand-in will actually be generated with (``max_degree``,
    default paper |V| - 1).  Solving at the generation-scale truncation
    keeps the stand-in's *density* — the property the machine model is
    sensitive to — equal to the published one at every scale.
    """
    if spec.alpha is not None:
        return spec.alpha
    from repro.powerlaw.alpha_solver import solve_alpha

    if max_degree is None:
        max_degree = spec.paper_vertices - 1
    return solve_alpha(spec.average_degree, max_degree)


def load_dataset(name: str, scale: float = 0.01, seed: int = None) -> DiGraph:
    """Generate the stand-in graph for a Table II dataset.

    Parameters
    ----------
    name:
        A key of :data:`DATASETS`.
    scale:
        Fraction of the published vertex count to generate, in
        ``(0, 1]``.  The default 1 % keeps even the LiveJournal stand-in
        (~48 k vertices, ~0.7 M edges) tractable on one core.
    seed:
        Override the spec's deterministic seed (e.g. for repetition
        studies).

    Returns
    -------
    DiGraph
        A power-law graph whose exponent and average degree match the
        published dataset.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")

    from repro.powerlaw.generator import generate_power_law_graph

    num_vertices = max(2, round(spec.paper_vertices * scale))
    return generate_power_law_graph(
        num_vertices=num_vertices,
        alpha=resolve_alpha(spec, max_degree=num_vertices - 1),
        max_degree=num_vertices - 1,
        allow_self_loops=False,
        seed=spec.degree_seed if seed is None else seed,
    )
