"""Immutable CSR-backed directed graph.

The design follows the needs of a distributed graph engine rather than a
general graph library:

* Edges are the unit of distribution (PowerGraph uses *vertex cuts*: edges
  are assigned to machines, vertices are replicated).  The canonical storage
  is therefore a pair of parallel arrays ``(src, dst)`` in a stable order —
  partitioners return an array of machine ids aligned with this order.
* Traversal structures (out-CSR / in-CSR) are derived lazily and cached;
  they are only needed by analytics and the single-machine reference
  implementations of the applications.
* The structure is immutable: every downstream component (partitioners,
  engine, profiler) may share one instance freely.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["DiGraph"]


class DiGraph:
    """A directed graph over vertices ``0 .. num_vertices - 1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  Vertex ids are dense integers; isolated
        vertices (ids with no incident edge) are allowed.
    src, dst:
        Parallel int64 arrays of edge endpoints.  Parallel edges are
        allowed (natural graphs contain them before deduplication); self
        loops are allowed unless the caller strips them (the paper's
        generator optionally omits them).

    Notes
    -----
    The edge order given at construction is preserved and is the contract
    between the graph and every partitioner: a partitioning is an array
    ``assignment`` with ``assignment[e]`` the machine of edge ``e``.
    """

    __slots__ = ("_num_vertices", "_src", "_dst", "__dict__")

    def __init__(self, num_vertices: int, src: np.ndarray, dst: np.ndarray):
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1:
            raise GraphError("src and dst must be one-dimensional arrays")
        if src.shape != dst.shape:
            raise GraphError(
                f"src and dst must have equal length, got {src.size} vs {dst.size}"
            )
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= num_vertices:
                raise GraphError(
                    f"edge endpoints must lie in [0, {num_vertices}), "
                    f"found range [{lo}, {hi}]"
                )
        self._num_vertices = int(num_vertices)
        self._src = src
        self._dst = dst
        # Writable views would let callers corrupt the cached CSR structures.
        self._src.setflags(write=False)
        self._dst.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of directed edges (counting multiplicities)."""
        return int(self._src.size)

    @property
    def src(self) -> np.ndarray:
        """Read-only source-endpoint array, aligned with :attr:`dst`."""
        return self._src

    @property
    def dst(self) -> np.ndarray:
        """Read-only destination-endpoint array, aligned with :attr:`src`."""
        return self._dst

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the ``(src, dst)`` arrays in canonical edge order."""
        return self._src, self._dst

    # ------------------------------------------------------------------ #
    # Degrees
    # ------------------------------------------------------------------ #

    @cached_property
    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex (int64 array of length ``num_vertices``)."""
        deg = np.bincount(self._src, minlength=self._num_vertices).astype(np.int64)
        deg.setflags(write=False)
        return deg

    @cached_property
    def in_degrees(self) -> np.ndarray:
        """In-degree per vertex."""
        deg = np.bincount(self._dst, minlength=self._num_vertices).astype(np.int64)
        deg.setflags(write=False)
        return deg

    @cached_property
    def degrees(self) -> np.ndarray:
        """Total degree (in + out) per vertex."""
        deg = self.out_degrees + self.in_degrees
        deg.setflags(write=False)
        return deg

    # ------------------------------------------------------------------ #
    # CSR adjacency (lazy)
    # ------------------------------------------------------------------ #

    @cached_property
    def _out_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(indptr, neighbor ids, edge ids) sorted by source vertex."""
        order = np.argsort(self._src, kind="stable")
        indptr = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(self.out_degrees, out=indptr[1:])
        return indptr, self._dst[order], order

    @cached_property
    def _in_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(indptr, neighbor ids, edge ids) sorted by destination vertex."""
        order = np.argsort(self._dst, kind="stable")
        indptr = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(self.in_degrees, out=indptr[1:])
        return indptr, self._src[order], order

    def out_neighbors(self, v: int) -> np.ndarray:
        """Destinations of edges leaving ``v`` (with multiplicity)."""
        indptr, nbrs, _ = self._out_csr
        self._check_vertex(v)
        return nbrs[indptr[v] : indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of edges entering ``v`` (with multiplicity)."""
        indptr, nbrs, _ = self._in_csr
        self._check_vertex(v)
        return nbrs[indptr[v] : indptr[v + 1]]

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._num_vertices):
            raise GraphError(
                f"vertex {v} out of range [0, {self._num_vertices})"
            )

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def reverse(self) -> "DiGraph":
        """Return the graph with every edge direction flipped."""
        return DiGraph(self._num_vertices, self._dst, self._src)

    def deduplicate(self) -> "DiGraph":
        """Return a copy with parallel edges collapsed (order re-canonicalised)."""
        if self.num_edges == 0:
            return DiGraph(self._num_vertices, self._src, self._dst)
        keys = self._src * np.int64(self._num_vertices) + self._dst
        _, idx = np.unique(keys, return_index=True)
        idx.sort()
        return DiGraph(self._num_vertices, self._src[idx], self._dst[idx])

    def without_self_loops(self) -> "DiGraph":
        """Return a copy with self loops removed."""
        keep = self._src != self._dst
        return DiGraph(self._num_vertices, self._src[keep], self._dst[keep])

    # ------------------------------------------------------------------ #
    # Interop / misc
    # ------------------------------------------------------------------ #

    @property
    def footprint_bytes(self) -> int:
        """Approximate in-memory footprint of the edge arrays."""
        return int(self._src.nbytes + self._dst.nbytes)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate edges as Python int pairs (test/debug helper; slow)."""
        for u, v in zip(self._src.tolist(), self._dst.tolist()):
            yield u, v

    def to_networkx(self):
        """Convert to a ``networkx.MultiDiGraph`` (for verification in tests)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        g.add_nodes_from(range(self._num_vertices))
        g.add_edges_from(zip(self._src.tolist(), self._dst.tolist()))
        return g

    @classmethod
    def from_edges(cls, edges, num_vertices: int = None) -> "DiGraph":
        """Build from an iterable of ``(u, v)`` pairs.

        ``num_vertices`` defaults to ``max endpoint + 1``.
        """
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                         dtype=np.int64)
        if arr.size == 0:
            return cls(num_vertices or 0, np.empty(0, np.int64), np.empty(0, np.int64))
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(f"edges must be an (m, 2) array, got shape {arr.shape}")
        n = int(arr.max()) + 1 if num_vertices is None else num_vertices
        return cls(n, arr[:, 0], arr[:, 1])

    def __eq__(self, other) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and np.array_equal(self._src, other._src)
            and np.array_equal(self._dst, other._dst)
        )

    def __hash__(self):  # graphs are mutable-looking containers; keep unhashable
        raise TypeError("DiGraph is not hashable")

    def __repr__(self) -> str:
        return (
            f"DiGraph(num_vertices={self._num_vertices}, "
            f"num_edges={self.num_edges})"
        )
