"""Graph substrate: compact directed graphs and datasets.

This package provides the graph representation every other subsystem builds
on:

* :mod:`repro.graph.digraph` -- an immutable, CSR-backed directed graph
  tuned for vectorised traversal (the simulated PowerGraph engine iterates
  edges as NumPy arrays, never as Python objects).
* :mod:`repro.graph.builder` -- incremental edge accumulation with optional
  deduplication and self-loop removal.
* :mod:`repro.graph.io` -- plain edge-list serialisation (the format the
  paper's framework ingests).
* :mod:`repro.graph.properties` -- degree analytics used by Table II and the
  power-law machinery.
* :mod:`repro.graph.datasets` -- stand-ins for the paper's four SNAP graphs
  (amazon, citation, social network, wiki) generated at configurable scale
  with matching power-law exponent and density.
"""

from repro.graph.digraph import DiGraph
from repro.graph.builder import GraphBuilder
from repro.graph.io import read_edge_list, read_npz, write_edge_list, write_npz
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    ring_graph,
    star_graph,
)
from repro.graph.properties import (
    degree_histogram,
    degree_distribution,
    average_degree,
    graph_summary,
    GraphSummary,
)
from repro.graph.datasets import (
    DatasetSpec,
    DATASETS,
    load_dataset,
    dataset_names,
)

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "read_edge_list",
    "read_npz",
    "write_edge_list",
    "write_npz",
    "erdos_renyi_graph",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "degree_histogram",
    "degree_distribution",
    "average_degree",
    "graph_summary",
    "GraphSummary",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "dataset_names",
]
