"""Incremental graph construction.

Synthetic generators and file readers produce edges in chunks; the builder
accumulates chunks without quadratic copying and materialises a
:class:`~repro.graph.digraph.DiGraph` once.  Options mirror the cleanup the
paper's pipeline applies to raw edge lists (self-loop and duplicate
removal).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates directed edges and builds a :class:`DiGraph`.

    Parameters
    ----------
    num_vertices:
        Fixed vertex-count, or ``None`` to infer ``max endpoint + 1`` at
        build time.
    drop_self_loops:
        Discard edges with ``u == v`` as they arrive.
    deduplicate:
        Collapse parallel edges at build time (first occurrence wins,
        canonical order preserved).
    """

    def __init__(
        self,
        num_vertices: Optional[int] = None,
        drop_self_loops: bool = False,
        deduplicate: bool = False,
    ):
        if num_vertices is not None and num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._num_vertices = num_vertices
        self._drop_self_loops = drop_self_loops
        self._deduplicate = deduplicate
        self._src_chunks: List[np.ndarray] = []
        self._dst_chunks: List[np.ndarray] = []
        self._count = 0

    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add one edge.  Prefer :meth:`add_edges` for bulk input."""
        return self.add_edges(
            np.asarray([u], dtype=np.int64), np.asarray([v], dtype=np.int64)
        )

    def add_edges(self, src: np.ndarray, dst: np.ndarray) -> "GraphBuilder":
        """Add a chunk of edges given as parallel endpoint arrays."""
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphError(
                f"src/dst must be equal-length 1-D arrays, got {src.shape} vs {dst.shape}"
            )
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphError("edge endpoints must be non-negative")
        if self._num_vertices is not None and src.size:
            hi = max(int(src.max()), int(dst.max()))
            if hi >= self._num_vertices:
                raise GraphError(
                    f"endpoint {hi} exceeds fixed num_vertices={self._num_vertices}"
                )
        if self._drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if src.size:
            self._src_chunks.append(src)
            self._dst_chunks.append(dst)
            self._count += src.size
        return self

    @property
    def num_pending_edges(self) -> int:
        """Edges accumulated so far (before dedup, after loop dropping)."""
        return self._count

    # ------------------------------------------------------------------ #

    def build(self) -> DiGraph:
        """Materialise the accumulated edges as an immutable graph.

        The builder may be reused after ``build``; subsequent edges start a
        fresh accumulation.
        """
        if self._count:
            src = np.concatenate(self._src_chunks)
            dst = np.concatenate(self._dst_chunks)
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        n = self._num_vertices
        if n is None:
            n = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
        graph = DiGraph(n, src, dst)
        if self._deduplicate:
            graph = graph.deduplicate()
        self._src_chunks = []
        self._dst_chunks = []
        self._count = 0
        return graph
