"""Edge-list serialisation.

The paper's framework ingests SNAP-style plain-text edge lists: one
``src dst`` pair per line, ``#`` comments allowed.  That format is kept here
so synthetic datasets round-trip through the same loader a real deployment
would use.
"""

from __future__ import annotations

import io
import os
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_npz",
    "write_npz",
]

PathLike = Union[str, os.PathLike]


def read_edge_list(
    path: PathLike,
    num_vertices: int = None,
    drop_self_loops: bool = False,
    deduplicate: bool = False,
    comment: str = "#",
) -> DiGraph:
    """Read a whitespace-separated edge list file into a :class:`DiGraph`.

    Parameters
    ----------
    path:
        Input file.  Each non-comment line must contain two integer ids
        (additional columns are rejected — a silent drop would hide data
        corruption).
    num_vertices:
        Optional fixed vertex-count; inferred from the data otherwise.
    drop_self_loops, deduplicate:
        Cleanup applied during construction.
    comment:
        Lines starting with this prefix are skipped.

    Raises
    ------
    GraphFormatError
        On any unparseable line, with the line number in the message.
    """
    srcs = []
    dsts = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst', got {stripped!r}"
                )
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer endpoint in {stripped!r}"
                ) from exc
    builder = GraphBuilder(
        num_vertices=num_vertices,
        drop_self_loops=drop_self_loops,
        deduplicate=deduplicate,
    )
    builder.add_edges(
        np.asarray(srcs, dtype=np.int64), np.asarray(dsts, dtype=np.int64)
    )
    return builder.build()


def write_npz(graph: DiGraph, path: PathLike) -> None:
    """Write the graph as a compressed NumPy archive.

    Orders of magnitude faster to load than text edge lists for large
    graphs; used when experiments cache generated stand-ins.
    """
    src, dst = graph.edges()
    np.savez_compressed(
        path,
        num_vertices=np.int64(graph.num_vertices),
        src=src,
        dst=dst,
    )


def read_npz(path: PathLike) -> DiGraph:
    """Read a graph written by :func:`write_npz`."""
    with np.load(path) as data:
        try:
            return DiGraph(
                int(data["num_vertices"]), data["src"], data["dst"]
            )
        except KeyError as exc:
            raise GraphFormatError(
                f"{path}: not a repro graph archive (missing {exc})"
            ) from exc


def write_edge_list(graph: DiGraph, path: PathLike, header: bool = True) -> None:
    """Write the graph as a SNAP-style edge list.

    Parameters
    ----------
    graph:
        Graph to serialise (canonical edge order is preserved).
    path:
        Output file path.
    header:
        Emit a comment header with vertex/edge counts (as SNAP files do).
    """
    src, dst = graph.edges()
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# Directed graph: {os.fspath(path)}\n")
            fh.write(
                f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n"
            )
        buf = io.StringIO()
        for u, v in zip(src.tolist(), dst.tolist()):
            buf.write(f"{u}\t{v}\n")
        fh.write(buf.getvalue())
