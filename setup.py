"""Setup shim for environments without the `wheel` package.

Configuration lives in pyproject.toml; this file only enables the legacy
editable-install path (`pip install -e . --no-build-isolation`) in offline
containers where PEP-517 editable builds cannot run.
"""

from setuptools import setup

setup()
