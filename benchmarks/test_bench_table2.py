"""Table II — real-world and synthetic graphs.

Regenerates every dataset stand-in at the benchmark scale, verifying that
the scaled stand-ins preserve the published density (|E|/|V|) and that the
recovered power-law exponents fall in the natural band the paper cites
(roughly 1.9–2.4, wiki's sparse 2.1 avg degree pushing slightly above).
"""

from repro.experiments.table2 import run_table2
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def test_bench_table2(benchmark):
    result = benchmark.pedantic(
        run_table2, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    emit(
        format_table(
            headers=(
                "Name",
                "Kind",
                "Paper |V|",
                "Paper |E|",
                "Scaled |V|",
                "Scaled |E|",
                "Paper avg deg",
                "Scaled avg deg",
                "Alpha (gen)",
                "Alpha (fit)",
            ),
            rows=result.rows(),
            title=f"Table II: graphs at scale {result.scale}",
        )
    )
    for row in result.rows_list:
        # Density of the stand-in tracks the published density.  Small
        # graphs carry heavy-tail sampling noise, hence the wide band.
        assert row.scaled_avg_degree == _approx(row.paper_avg_degree, rel=0.45), row
        # Natural-graph exponents live in the paper's cited band.
        assert 1.7 <= row.alpha_generated <= 2.7, row


def _approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
