"""Fig. 8b — CCR accuracy across same-thread-count categories.

Paper shape: m4/c4/r3 2xlarge expose identical computing threads yet
diverge ~1.1–1.2× in real graph-processing speed (c4 ≈ 1.2×, r3 ≈ 1.1×
over m4); proxies track the divergence almost perfectly (~96 % accuracy)
while thread counting sees three identical machines.
"""

from repro.experiments.fig8 import run_fig8b
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def test_bench_fig8b(benchmark):
    result = benchmark.pedantic(
        run_fig8b, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    emit(
        format_table(
            headers=("app", "machine", "real speedup", "proxy estimate", "prior estimate"),
            rows=result.rows(),
            title=(
                "Fig. 8b: CCR across categories (m4/c4/r3 2xlarge) — "
                f"proxy error {result.mean_proxy_error_pct:.1f}%, "
                f"thread-count error {result.mean_prior_error_pct:.1f}%"
            ),
        )
    )
    assert result.mean_proxy_error_pct < 5.0
    # Prior work estimates 1.0 for every machine; the real c4 advantage
    # (~1.2x) makes its error visible while proxies stay accurate.
    assert result.mean_prior_error_pct > 8.0
    for app in result.apps:
        c4 = app.real[app.machines.index("c4.2xlarge")]
        r3 = app.real[app.machines.index("r3.2xlarge")]
        assert 1.05 < c4 < 1.35, (app.app, c4)
        assert 1.0 < r3 < 1.25, (app.app, r3)
