"""Table I — machine configurations.

Regenerates the paper's machine table (thread counts and hourly prices
published; frequency/bandwidth/LLC are this reproduction's calibrated
parameters) and checks it against the published rows.
"""

from repro.experiments.table1 import run_table1
from repro.utils.tables import format_table

from conftest import emit


def test_bench_table1(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit(
        format_table(
            headers=(
                "Name",
                "HW Threads",
                "Computing Threads",
                "Cost Rate",
                "Type",
                "Freq (GHz)",
                "MemBW (GB/s)",
                "LLC (MB)",
            ),
            rows=result.rows(),
            title="Table I: Amazon Virtual Machine and Local Physical Machine Configurations",
        )
    )
    assert result.matches_paper(), "catalog diverges from the published Table I"
