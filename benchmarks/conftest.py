"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper and prints the
same rows/series the paper reports (run with ``-s`` to see them inline;
they also assert the headline *shape* so the suite doubles as a regression
check on the reproduction).  Scales are chosen so the full suite completes
in minutes on one core.
"""

import sys

import pytest

#: Graph scale used by the heavier evaluation benches.  0.01 of the
#: paper-scale vertex counts keeps every sweep tractable on one core while
#: staying above the noise floor of the smallest graphs.
BENCH_SCALE = 0.01


def emit(text: str) -> None:
    """Print a result block (visible with ``pytest -s``)."""
    sys.stdout.write("\n" + text + "\n")


@pytest.fixture
def bench_scale() -> float:
    return BENCH_SCALE
