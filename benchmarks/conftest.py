"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper and prints the
same rows/series the paper reports (run with ``-s`` to see them inline;
they also assert the headline *shape* so the suite doubles as a regression
check on the reproduction).  Scales are chosen so the full suite completes
in minutes on one core.

Every benchmark runs under a fresh :class:`repro.obs.Observer`, and the
session writes ``BENCH_PR2.json`` at the repository root: per-benchmark
wall time plus the key observed metric counts (spans, edge ops, sync
bytes, supersteps).  The file is machine-readable provenance for CI trend
tracking.
"""

import json
import pathlib
import sys
import time

import pytest

from repro.obs import Observer, enabled

#: Graph scale used by the heavier evaluation benches.  0.01 of the
#: paper-scale vertex counts keeps every sweep tractable on one core while
#: staying above the noise floor of the smallest graphs.
BENCH_SCALE = 0.01

#: Where the per-benchmark record lands (repository root).
BENCH_REPORT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR2.json"

#: test nodeid -> record; filled by the autouse fixture below.
_RECORDS = {}


def emit(text: str) -> None:
    """Print a result block (visible with ``pytest -s``)."""
    sys.stdout.write("\n" + text + "\n")


@pytest.fixture
def bench_scale() -> float:
    return BENCH_SCALE


def _sum_prefix(values, prefix):
    """Sum a flat metric dict over every label set of one metric name."""
    return float(
        sum(v for k, v in values.items() if k.split("{")[0] == prefix)
    )


@pytest.fixture(autouse=True)
def bench_observer(request):
    """Time each benchmark and record what the observer saw."""
    observer = Observer()
    start = time.perf_counter()
    with enabled(observer):
        yield observer
    wall = time.perf_counter() - start

    counters = observer.metrics.counters
    _RECORDS[request.node.nodeid] = {
        "wall_seconds": round(wall, 4),
        "spans": len(observer.spans),
        "final_tick": observer.tracer.clock.ticks,
        "edge_ops": _sum_prefix(counters, "engine.edge_ops"),
        "sync_bytes": _sum_prefix(counters, "engine.sync_bytes"),
        "supersteps": _sum_prefix(counters, "engine.supersteps"),
        "edges_partitioned": _sum_prefix(counters, "partition.edges_assigned"),
    }


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS:
        return
    report = {
        "scale": BENCH_SCALE,
        "benchmarks": dict(sorted(_RECORDS.items())),
        "total_wall_seconds": round(
            sum(r["wall_seconds"] for r in _RECORDS.values()), 4
        ),
    }
    BENCH_REPORT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
