"""Fig. 10a — Case 2: local cluster, different thread counts.

Paper shape: with a 4-computing-thread and a 12-computing-thread machine
(real CCRs ≈ 1:3–3.5 vs prior's 1:3 thread guess), both heterogeneity-
aware systems beat the default, the CCR-guided one beats prior work, and
the energy savings of correct balancing exceed prior work's.  Paper
magnitudes: prior 1.27× / ours 1.45× (8.4 % / 23.6 % energy); this
simulation's gains over the default are larger in absolute terms (its
partitioners follow weights more faithfully than real PowerGraph ingress —
see EXPERIMENTS.md) while preserving every ordering.
"""

from repro.experiments.fig10 import run_case2
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def test_bench_fig10a(benchmark):
    result = benchmark.pedantic(
        run_case2, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    emit(
        format_table(
            headers=("app", "prior speedup", "ccr speedup", "prior energy %", "ccr energy %"),
            rows=result.rows(),
            title=(
                "Fig. 10a: Case 2 (same frequency) over the default system — "
                f"mean prior {result.mean_speedup('prior'):.2f}x vs "
                f"ccr {result.mean_speedup('ccr'):.2f}x; energy "
                f"{result.mean_energy_savings_pct('prior'):.1f}% vs "
                f"{result.mean_energy_savings_pct('ccr'):.1f}%"
            ),
        )
    )
    # Both heterogeneity-aware systems beat the default ...
    assert result.mean_speedup("prior") > 1.2
    assert result.mean_speedup("ccr") > 1.2
    # ... and CCR guidance beats thread counting on runtime and energy.
    assert result.mean_speedup("ccr") > result.mean_speedup("prior")
    assert result.mean_energy_savings_pct("ccr") > result.mean_energy_savings_pct(
        "prior"
    )
    # Energy savings are substantial when the load matches capability.
    assert result.mean_energy_savings_pct("ccr") > 15.0
