"""Fig. 10b — Case 3: frequency-heterogeneous (tiny-server) cluster.

Paper shape: capping the small machine at 1.8 GHz (emulating an ARM-like
tiny server) pushes the CCRs far beyond prior work's 1:3 thread guess
(PageRank/CC/Coloring above 1:6; Triangle Count least affected), so the
CCR advantage over prior work *grows* relative to Case 2, as do the
energy savings.  Paper magnitudes: prior 1.37× / ours 1.58×
(10.4 % / 26.4 % energy).
"""

from repro.experiments.fig10 import run_case2, run_case3
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def test_bench_fig10b(benchmark):
    result = benchmark.pedantic(
        run_case3, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    emit(
        format_table(
            headers=("app", "prior speedup", "ccr speedup", "prior energy %", "ccr energy %"),
            rows=result.rows(),
            title=(
                "Fig. 10b: Case 3 (different frequency ranges) over the default — "
                f"mean prior {result.mean_speedup('prior'):.2f}x vs "
                f"ccr {result.mean_speedup('ccr'):.2f}x; energy "
                f"{result.mean_energy_savings_pct('prior'):.1f}% vs "
                f"{result.mean_energy_savings_pct('ccr'):.1f}%"
            ),
        )
    )
    assert result.mean_speedup("ccr") > result.mean_speedup("prior") > 1.2
    assert result.mean_energy_savings_pct("ccr") > result.mean_energy_savings_pct(
        "prior"
    )
    # The CCR advantage over prior work grows as heterogeneity increases.
    case2 = run_case2(scale=BENCH_SCALE)
    gap3 = result.mean_speedup("ccr") / result.mean_speedup("prior")
    gap2 = case2.mean_speedup("ccr") / case2.mean_speedup("prior")
    assert gap3 > gap2, (gap2, gap3)
    emit(f"CCR-vs-prior advantage: case2 {gap2:.3f}x -> case3 {gap3:.3f}x")
