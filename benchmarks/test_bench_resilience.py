"""Resilience benchmarks: what faults cost, and what the supervisor buys.

Not a figure of the paper — the paper assumes a fault-free cluster.  These
benches quantify the resilient runtime added on top of it:

* recovery overhead vs crash count: each crash replays at most one
  checkpoint interval, so the overhead curve is monotone in the number of
  crashes and bounded by the checkpoint/restart policy;
* degradation-aware re-balancing: a mid-run 4x slowdown on one machine
  turns the proxy-weighted partition into the wrong partition; the
  supervisor detects the straggler, discounts its weight, and the spliced
  re-partitioned run beats riding out the fault on the stale partition.
"""

import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.apps import make_app
from repro.cluster.perfmodel import PerformanceModel
from repro.engine.resilient import ResilientRuntime, simulate_resilient_execution
from repro.engine.runtime import GraphProcessingSystem
from repro.faults.checkpoint import CheckpointPolicy
from repro.faults.schedule import CrashFault, FaultSchedule, SlowdownFault
from repro.graph.datasets import load_dataset
from repro.partition import make_partitioner
from repro.partition.weights import uniform_weights
from repro.utils.tables import format_table

from conftest import emit

# Resilience scenarios re-run the priced execution many times (replays,
# rebalance splices), so they use a smaller scale than the figure benches.
SCALE = 0.002


def _cluster():
    return Cluster(
        [get_machine("m4.2xlarge")] * 2 + [get_machine("c4.2xlarge")] * 2,
        perf=PerformanceModel(model_scale=SCALE),
    )


def test_bench_recovery_overhead_vs_crashes(benchmark):
    """Recovery overhead grows monotonically with the number of crashes."""
    cluster = _cluster()
    graph = load_dataset("wiki", scale=SCALE)
    base = GraphProcessingSystem(cluster).run(
        make_app("pagerank"), graph, make_partitioner("hybrid"),
        weights=uniform_weights(cluster),
    )
    ckpt = CheckpointPolicy(interval=5)

    def crashes(n):
        return FaultSchedule(
            crashes=tuple(
                CrashFault(superstep=3 + 7 * k, machine=k % cluster.num_machines)
                for k in range(n)
            ),
            seed=17,
        )

    def run():
        overheads = []
        for n in (0, 1, 2, 4):
            report = simulate_resilient_execution(
                base.trace, cluster, schedule=crashes(n), checkpoint=ckpt
            )
            overheads.append(
                (n, report.runtime_seconds - base.report.runtime_seconds)
            )
        return overheads

    overheads = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            headers=("crashes", "recovery overhead (ms)"),
            rows=[(n, f"{o * 1e3:.3f}") for n, o in overheads],
            title="Recovery overhead vs crash count (pagerank/wiki, "
                  f"checkpoint every {ckpt.interval})",
        )
    )
    assert overheads[0][1] == 0.0
    for (_, lo), (_, hi) in zip(overheads, overheads[1:]):
        assert hi > lo


def test_bench_supervisor_rebalance_beats_riding_it_out(benchmark):
    """Mid-run 4x slowdown: re-balancing beats the stale partition."""
    cluster = _cluster()
    graph = load_dataset("wiki", scale=SCALE)
    schedule = FaultSchedule(
        slowdowns=(SlowdownFault(superstep=4, machine=0, factor=4.0,
                                 duration=None),),
        seed=5,
    )
    # No checkpoint tax: isolate the pure load-balancing effect.
    ckpt = CheckpointPolicy(interval=0, restart_seconds=0.0)

    def run():
        results = {}
        for rebalance in (False, True):
            outcome = ResilientRuntime(
                cluster, partitioner="hybrid", schedule=schedule,
                checkpoint=ckpt, rebalance=rebalance,
            ).run("pagerank", graph)
            results[rebalance] = outcome.report
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ride, rebal = results[False], results[True]
    speedup = ride.runtime_seconds / rebal.runtime_seconds
    emit(
        format_table(
            headers=("strategy", "runtime (ms)", "energy (J)"),
            rows=[
                ("ride it out", f"{ride.runtime_seconds * 1e3:.3f}",
                 f"{ride.energy_joules:.2f}"),
                (
                    "supervisor re-balance "
                    f"(at superstep {rebal.recovery.rebalance_superstep})",
                    f"{rebal.runtime_seconds * 1e3:.3f}",
                    f"{rebal.energy_joules:.2f}",
                ),
            ],
            title="Mid-run 4x slowdown on machine 0 "
                  f"(pagerank/wiki, speedup {speedup:.2f}x)",
        )
    )
    assert rebal.recovery.rebalanced
    assert rebal.runtime_seconds < ride.runtime_seconds
    assert speedup > 1.2
