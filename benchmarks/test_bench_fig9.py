"""Fig. 9 — Case 1: CCR-guided vs prior work on the EC2 cluster.

Paper shape: on 2× m4.2xlarge + 2× c4.2xlarge (identical thread counts, so
prior work partitions uniformly) the CCR-guided system wins on every
application; Coloring benefits least (asynchronous engine), and the
mixed-cut algorithms (Hybrid/Ginger) and Oblivious do best.  Paper
magnitudes: ~1.16× average / 1.45× max; this simulation's machine gap
yields a smaller but same-shaped ~1.05–1.09× average (see EXPERIMENTS.md).
"""

import numpy as np

from repro.experiments.fig9 import run_fig9
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def test_bench_fig9(benchmark):
    result = benchmark.pedantic(
        run_fig9, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    emit(
        format_table(
            headers=("app", "graph", "algorithm", "prior (s)", "ccr (s)", "speedup"),
            rows=result.rows(),
            title=(
                "Fig. 9: Case 1 runtimes, prior work vs CCR-guided — "
                f"mean {result.mean_speedup:.3f}x, max {result.max_speedup:.3f}x"
            ),
            float_fmt=".5f",
        )
    )
    apps = result.app_speedups()
    # CCR-guided wins on average and on every application.
    assert result.mean_speedup > 1.02
    assert all(s > 0.99 for s in apps.values()), apps
    # Coloring benefits least (asynchronous execution), as in the paper.
    assert apps["coloring"] == min(apps.values()), apps
    # Max speedup comfortably above the mean (the amazon/CC/hybrid-style
    # outliers of the paper).
    assert result.max_speedup > result.mean_speedup + 0.05
