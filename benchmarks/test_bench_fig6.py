"""Fig. 6 — power-law degree distribution (Friendster-like).

Paper shape: the degree distribution is a straight line in log-log space
whose slope is governed by alpha.  The bench regenerates the distribution
for a Friendster-like graph and checks linearity (R²) and the recovered
exponent.
"""

from repro.experiments.fig6 import run_fig6
from repro.utils.tables import format_table

from conftest import emit


def test_bench_fig6(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    emit(
        format_table(
            headers=("degree", "P(degree)"),
            rows=result.rows(),
            title=(
                "Fig. 6: Friendster-like degree distribution "
                f"(alpha requested {result.alpha_requested}, "
                f"CCDF fit {result.alpha_fit_ccdf:.2f}, R^2 {result.r_squared:.3f})"
            ),
            float_fmt=".2e",
        )
    )
    assert result.r_squared > 0.97, "distribution is not a clean power law"
    assert abs(result.alpha_fit_ccdf - result.alpha_requested) < 0.2
    assert abs(result.alpha_fit_moment - result.alpha_requested) < 0.1
