"""Ablations of the design choices DESIGN.md calls out.

Not figures of the paper — these quantify the knobs behind its claims:

* proxy-set size: 1 vs 3 proxies (the paper deploys 3 to cover the alpha
  range of natural graphs);
* proxy graph size: CCR stability as the proxy shrinks (profiling cost is
  linear in proxy size, so smaller is cheaper if accuracy holds — the
  paper argues graph size is "a trivial factor" for CCR);
* Hybrid/Ginger high-degree threshold: replication-factor sensitivity;
* proxy CCR vs the oracle (profiling the real input): how much headroom
  the proxy approximation leaves.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.estimators import OracleEstimator, ProxyCCREstimator
from repro.core.profiler import ProxyProfiler
from repro.core.proxy import ProxySet
from repro.experiments.common import case1_cluster
from repro.experiments.fig8 import machine_speedups, C4_FAMILY
from repro.experiments.common import make_perf
from repro.graph.datasets import load_dataset
from repro.partition import HybridPartitioner, replication_factor
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def _real_curve(app, scale, graphs=("citation", "social_network")):
    perf = make_perf(scale)
    return np.mean(
        [
            machine_speedups(app, load_dataset(g, scale=scale), C4_FAMILY, perf)
            for g in graphs
        ],
        axis=0,
    )


def _proxy_curve(app, scale, alphas, vertices):
    perf = make_perf(scale)
    proxies = ProxySet(num_vertices=vertices, alphas=alphas, seed=100)
    return np.mean(
        [
            machine_speedups(app, g, C4_FAMILY, perf)
            for g in proxies.graphs().values()
        ],
        axis=0,
    )


def _err(estimate, truth):
    return float(np.mean(np.abs(estimate[1:] - truth[1:]) / truth[1:]) * 100)


def test_bench_ablation_proxy_count(benchmark):
    """One proxy vs the paper's three: coverage buys accuracy."""

    def run():
        real = _real_curve("triangle_count", BENCH_SCALE)
        one = _proxy_curve("triangle_count", BENCH_SCALE, (2.1,), 32_000)
        three = _proxy_curve(
            "triangle_count", BENCH_SCALE, (1.95, 2.1, 2.25), 32_000
        )
        return _err(one, real), _err(three, real)

    err_one, err_three = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            headers=("proxy set", "CCR error vs real (%)"),
            rows=[("1 proxy (alpha=2.1)", err_one), ("3 proxies (paper)", err_three)],
            title="Ablation: proxy-set alpha coverage (triangle_count)",
        )
    )
    assert err_three < 12.0


def test_bench_ablation_proxy_size(benchmark):
    """CCR stability as the proxy graph shrinks (profiling cost knob)."""

    def run():
        real = _real_curve("pagerank", BENCH_SCALE)
        rows = []
        for vertices in (4_000, 8_000, 16_000, 32_000):
            est = _proxy_curve("pagerank", BENCH_SCALE, (1.95, 2.1, 2.25), vertices)
            rows.append((vertices, _err(est, real)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            headers=("proxy |V|", "CCR error vs real (%)"),
            rows=rows,
            title="Ablation: proxy graph size (pagerank)",
        )
    )
    # Even the smallest proxies stay useful; the deployed size is safe.
    assert rows[-1][1] < 12.0


def test_bench_ablation_hybrid_threshold(benchmark):
    """High-degree threshold vs replication factor (Hybrid)."""

    def run():
        graph = load_dataset("social_network", scale=BENCH_SCALE)
        rows = []
        for threshold in (10, 30, 100, 300, 1000):
            part = HybridPartitioner(seed=1, threshold=threshold).partition(graph, 4)
            rows.append((threshold, replication_factor(part)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            headers=("threshold", "replication factor"),
            rows=rows,
            title="Ablation: Hybrid high-degree threshold (social_network, 4 machines)",
        )
    )
    reps = [r for _, r in rows]
    # Replication varies with the threshold and stays bounded.
    assert max(reps) < 4.0 and min(reps) > 1.0


def test_bench_ablation_proxy_vs_oracle(benchmark):
    """How close proxy weights get to profiling the actual input graph."""

    def run():
        cluster = case1_cluster(BENCH_SCALE)
        graph = load_dataset("citation", scale=BENCH_SCALE)
        proxies = ProxySet(num_vertices=32_000, seed=100)
        proxy_w = ProxyCCREstimator(
            profiler=ProxyProfiler(proxies=proxies)
        ).weights(cluster, "pagerank")
        oracle_w = OracleEstimator().weights(cluster, "pagerank", graph)
        return proxy_w, oracle_w

    proxy_w, oracle_w = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            headers=("slot", "proxy weight", "oracle weight"),
            rows=[(i, float(p), float(o)) for i, (p, o) in enumerate(zip(proxy_w, oracle_w))],
            title="Ablation: proxy CCR weights vs oracle (case 1, pagerank)",
            float_fmt=".4f",
        )
    )
    assert np.abs(proxy_w - oracle_w).max() < 0.03
