"""Fig. 2 — speedup estimated by prior work vs. real speedup.

Paper shape: the thread-count estimate (1, 3, 7, 17 across the c4 ladder)
diverges far above every application's real scaling; applications diverge
from each other, with PageRank saturating on the largest machines.
"""

from repro.experiments.fig2 import run_fig2
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def test_bench_fig2(benchmark):
    result = benchmark.pedantic(
        run_fig2, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    emit(
        format_table(
            headers=result.headers(),
            rows=result.rows(),
            title="Fig. 2: prior-work estimate vs real application scaling (c4 family)",
        )
    )

    prior_top = result.prior_estimate[-1]
    for app, series in result.real_speedups.items():
        # The thread estimate overshoots every application's real scaling
        # on the biggest machine by a wide margin.
        assert prior_top > 1.8 * series[-1], (app, series)
        # Real scaling is monotone: bigger machines are never slower.
        assert all(b >= a * 0.98 for a, b in zip(series, series[1:])), (app, series)

    # PageRank saturates between the last two machines (Fig. 2's red line).
    assert "pagerank" in result.saturating_apps(threshold=1.35)
