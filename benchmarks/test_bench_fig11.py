"""Fig. 11 — cost and performance Pareto space of EC2 machines.

Paper shape: the three 2xlarge machines (different categories) cluster
together around ~2× speedup at a small fraction of the biggest machine's
cost; within the compute-optimised family the 8xlarge is the most
expensive machine per graph task; the mid sizes (2xlarge/4xlarge) are the
reasonable candidates.
"""

from repro.experiments.fig11 import run_fig11
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def test_bench_fig11(benchmark):
    result = benchmark.pedantic(
        run_fig11, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    emit(
        format_table(
            headers=("app", "machine", "speedup", "cost per task ($)", "relative cost"),
            rows=result.rows(),
            title="Fig. 11: cost/performance Pareto of EC2 machines (proxy-profiled)",
            float_fmt=".3e",
        )
    )
    means = result.mean_by_machine()
    emit(
        format_table(
            headers=("machine", "mean speedup", "mean cost per task ($)"),
            rows=[(m, s, c) for m, (s, c) in sorted(means.items())],
            title="Fig. 11 summary (mean over applications)",
            float_fmt=".3e",
        )
    )

    # All 2xlarge machines cluster together around ~2x speedup.
    for m in ("c4.2xlarge", "m4.2xlarge", "r3.2xlarge"):
        assert 1.6 < means[m][0] < 2.8, (m, means[m])

    # Within the compute-optimised family, 8xlarge costs the most per task.
    c4 = {m: c for m, (s, c) in means.items() if m.startswith("c4.")}
    assert max(c4, key=c4.get) == "c4.8xlarge", c4

    # The Pareto front contains the mid sizes the paper recommends.
    front = {p.machine for p in result.pareto()}
    assert "c4.2xlarge" in front or "c4.4xlarge" in front, front
