"""Fig. 8a — CCR accuracy across the c4 machine ladder.

Paper headline: synthetic power-law proxies estimate the real per-machine
speedups with ~92 % accuracy, while prior work's thread counting is off by
~108 % on average; Triangle Count's big-machine jump is the proxies'
largest miss.
"""

from repro.experiments.fig8 import run_fig8a
from repro.utils.tables import format_table

from conftest import emit, BENCH_SCALE


def test_bench_fig8a(benchmark):
    result = benchmark.pedantic(
        run_fig8a, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    emit(
        format_table(
            headers=("app", "machine", "real speedup", "proxy estimate", "prior estimate"),
            rows=result.rows(),
            title=(
                "Fig. 8a: CCR from real vs synthetic graphs (c4 family) — "
                f"proxy error {result.mean_proxy_error_pct:.1f}%, "
                f"thread-count error {result.mean_prior_error_pct:.1f}%"
            ),
        )
    )
    # The paper's central accuracy claim: proxies under 10 % error, thread
    # counting around an order of magnitude worse.
    assert result.mean_proxy_error_pct < 10.0
    assert result.mean_prior_error_pct > 40.0
    assert result.mean_prior_error_pct > 5 * result.mean_proxy_error_pct
