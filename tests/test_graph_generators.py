"""Unit tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    ring_graph,
    star_graph,
)


class TestErdosRenyi:
    def test_edge_count(self):
        g = erdos_renyi_graph(1000, 4.0, seed=1)
        assert g.num_edges == 4000

    def test_no_self_loops(self):
        g = erdos_renyi_graph(500, 6.0, seed=2)
        src, dst = g.edges()
        assert not np.any(src == dst)

    def test_deterministic(self):
        assert erdos_renyi_graph(200, 3.0, seed=5) == erdos_renyi_graph(
            200, 3.0, seed=5
        )

    def test_degrees_concentrated(self):
        """Binomial degrees: no power-law hubs."""
        g = erdos_renyi_graph(2000, 8.0, seed=3)
        assert g.out_degrees.max() < 8 * 4

    def test_validation(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(1, 2.0)
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 0.0)


class TestRing:
    def test_structure(self):
        g = ring_graph(5)
        assert g.num_edges == 5
        assert np.all(g.out_degrees == 1)
        assert np.all(g.in_degrees == 1)

    def test_too_small(self):
        with pytest.raises(GraphError):
            ring_graph(1)


class TestStar:
    def test_outward(self):
        g = star_graph(6)
        assert g.out_degrees[0] == 6
        assert np.all(g.in_degrees[1:] == 1)

    def test_inward(self):
        g = star_graph(6, inward=True)
        assert g.in_degrees[0] == 6

    def test_too_small(self):
        with pytest.raises(GraphError):
            star_graph(0)


class TestComplete:
    def test_edge_count(self):
        g = complete_graph(5)
        assert g.num_edges == 5 * 4

    def test_uniform_degrees(self):
        g = complete_graph(6)
        assert np.all(g.out_degrees == 5)
        assert np.all(g.in_degrees == 5)


class TestGrid:
    def test_edge_count(self):
        # rows*(cols-1) east + (rows-1)*cols south
        g = grid_graph(3, 4)
        assert g.num_edges == 3 * 3 + 2 * 4

    def test_degenerate_line(self):
        g = grid_graph(1, 5)
        assert g.num_edges == 4

    def test_corner_degrees(self):
        g = grid_graph(3, 3)
        assert g.out_degrees[0] == 2   # top-left: east + south
        assert g.out_degrees[8] == 0   # bottom-right sink

    def test_validation(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)


def test_partitioners_handle_star_skew():
    """The extreme-skew topology stays valid under every algorithm."""
    from repro.partition import PARTITIONERS, make_partitioner

    g = star_graph(200)
    for name in PARTITIONERS:
        r = make_partitioner(name, seed=1).partition(g, 4)
        assert r.edges_per_machine().sum() == 200
