"""Unit tests for repro.core.cost (Section V-C)."""

import pytest

from repro.cluster.catalog import get_machine, xeon_small
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.core.cost import CostPoint, cost_efficiency, pareto_front
from repro.core.proxy import ProxySet
from repro.errors import ClusterError


@pytest.fixture(scope="module")
def points():
    template = Cluster(
        [get_machine("c4.xlarge")], perf=PerformanceModel(model_scale=0.001)
    )
    return cost_efficiency(
        [get_machine("c4.xlarge"), get_machine("c4.2xlarge"), get_machine("c4.8xlarge")],
        template,
        apps=("pagerank",),
        proxies=ProxySet(num_vertices=1200, seed=41),
        baseline="c4.xlarge",
    )


class TestCostEfficiency:
    def test_one_point_per_machine_app(self, points):
        assert len(points) == 3
        assert {p.machine for p in points} == {
            "c4.xlarge",
            "c4.2xlarge",
            "c4.8xlarge",
        }

    def test_baseline_speedup_one(self, points):
        base = next(p for p in points if p.machine == "c4.xlarge")
        assert base.speedup == pytest.approx(1.0)

    def test_bigger_machine_faster(self, points):
        by = {p.machine: p for p in points}
        assert by["c4.8xlarge"].speedup > by["c4.2xlarge"].speedup > 1.0

    def test_cost_per_task_definition(self, points):
        p = next(p for p in points if p.machine == "c4.2xlarge")
        assert p.cost_per_task == pytest.approx(
            p.runtime_seconds / 3600.0 * 0.419
        )

    def test_relative_cost_normalised(self, points):
        assert max(p.relative_cost for p in points) == pytest.approx(1.0)

    def test_unpriced_machine_rejected(self):
        template = Cluster([get_machine("c4.xlarge")])
        with pytest.raises(ClusterError, match="hourly rate"):
            cost_efficiency([xeon_small()], template)

    def test_unknown_baseline_rejected(self):
        template = Cluster([get_machine("c4.xlarge")])
        with pytest.raises(ClusterError, match="baseline"):
            cost_efficiency(
                [get_machine("c4.xlarge")],
                template,
                apps=("pagerank",),
                proxies=ProxySet(num_vertices=1200, seed=41),
                baseline="c4.9xlarge",
            )

    def test_empty_machines_rejected(self):
        template = Cluster([get_machine("c4.xlarge")])
        with pytest.raises(ClusterError):
            cost_efficiency([], template)


class TestParetoFront:
    def test_dominated_point_removed(self):
        a = CostPoint("a", "x", 1.0, speedup=1.0, cost_per_task=1.0, relative_cost=1.0)
        b = CostPoint("b", "x", 1.0, speedup=2.0, cost_per_task=0.5, relative_cost=0.5)
        front = pareto_front([a, b])
        assert [p.machine for p in front] == ["b"]

    def test_incomparable_points_kept(self):
        a = CostPoint("a", "x", 1.0, speedup=1.0, cost_per_task=0.1, relative_cost=0.2)
        b = CostPoint("b", "x", 1.0, speedup=3.0, cost_per_task=0.9, relative_cost=1.0)
        front = pareto_front([a, b])
        assert {p.machine for p in front} == {"a", "b"}

    def test_sorted_by_speedup(self):
        a = CostPoint("a", "x", 1.0, speedup=3.0, cost_per_task=0.9, relative_cost=1.0)
        b = CostPoint("b", "x", 1.0, speedup=1.0, cost_per_task=0.1, relative_cost=0.2)
        front = pareto_front([a, b])
        assert [p.machine for p in front] == ["b", "a"]

    def test_empty(self):
        assert pareto_front([]) == []
