"""Unit tests for repro.powerlaw.distribution."""

import numpy as np
import pytest

from repro.powerlaw.distribution import PowerLawDistribution


class TestConstruction:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            PowerLawDistribution(0.1, 100)
        with pytest.raises(ValueError):
            PowerLawDistribution(9.0, 100)

    def test_max_degree_positive(self):
        with pytest.raises(ValueError):
            PowerLawDistribution(2.0, 0)


class TestPmf:
    def test_normalised(self):
        d = PowerLawDistribution(2.1, 500)
        assert d.pmf.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        d = PowerLawDistribution(2.1, 500)
        assert np.all(np.diff(d.pmf) < 0)

    def test_power_law_ratio(self):
        """P(2d)/P(d) == 2**-alpha exactly (Eq. 3)."""
        d = PowerLawDistribution(2.0, 1000)
        assert d.pmf[19] / d.pmf[9] == pytest.approx((20 / 10) ** -2.0)

    def test_smaller_alpha_heavier_tail(self):
        dense = PowerLawDistribution(1.9, 1000)
        sparse = PowerLawDistribution(2.4, 1000)
        assert dense.pmf[-1] > sparse.pmf[-1]

    def test_prob_outside_support_zero(self):
        d = PowerLawDistribution(2.0, 10)
        assert d.prob(np.array([0, 11])).tolist() == [0.0, 0.0]

    def test_prob_matches_pmf(self):
        d = PowerLawDistribution(2.0, 10)
        assert d.prob(np.array([3]))[0] == pytest.approx(d.pmf[2])


class TestCdf:
    def test_ends_at_one(self):
        assert PowerLawDistribution(2.2, 300).cdf[-1] == 1.0

    def test_monotone(self):
        cdf = PowerLawDistribution(2.2, 300).cdf
        assert np.all(np.diff(cdf) >= 0)


class TestMoments:
    def test_mean_matches_direct_sum(self):
        d = PowerLawDistribution(2.1, 200)
        support = np.arange(1, 201)
        assert d.mean == pytest.approx(float(support @ d.pmf))

    def test_mean_decreases_with_alpha(self):
        assert (
            PowerLawDistribution(1.9, 1000).mean
            > PowerLawDistribution(2.4, 1000).mean
        )

    def test_variance_nonnegative(self):
        assert PowerLawDistribution(2.3, 500).variance >= 0


class TestSampling:
    def test_support_bounds(self):
        d = PowerLawDistribution(2.0, 50)
        s = d.sample_degrees(10_000, seed=1)
        assert s.min() >= 1 and s.max() <= 50

    def test_deterministic_with_seed(self):
        d = PowerLawDistribution(2.0, 50)
        assert np.array_equal(d.sample_degrees(100, seed=5), d.sample_degrees(100, seed=5))

    def test_sample_mean_near_theoretical(self):
        d = PowerLawDistribution(2.2, 2000)
        s = d.sample_degrees(200_000, seed=3)
        # Heavy-tailed, so allow a generous band.
        assert s.mean() == pytest.approx(d.mean, rel=0.1)

    def test_degree_one_most_common(self):
        d = PowerLawDistribution(2.2, 100)
        s = d.sample_degrees(10_000, seed=2)
        assert np.bincount(s).argmax() == 1

    def test_zero_size(self):
        assert PowerLawDistribution(2.0, 10).sample_degrees(0).size == 0

    def test_negative_size(self):
        with pytest.raises(ValueError):
            PowerLawDistribution(2.0, 10).sample_degrees(-1)
