"""Unit tests for repro.faults.schedule (fault models and scenarios)."""

import pytest

from repro.errors import FaultError
from repro.faults.schedule import (
    CrashFault,
    FaultSchedule,
    NetworkFault,
    SlowdownFault,
)


class TestEventValidation:
    def test_crash_rejects_negative_superstep(self):
        with pytest.raises(FaultError):
            CrashFault(superstep=-1, machine=0)

    def test_crash_rejects_zero_repeats(self):
        with pytest.raises(FaultError):
            CrashFault(superstep=0, machine=0, repeats=0)

    def test_slowdown_rejects_speedup(self):
        with pytest.raises(FaultError, match="speedups"):
            SlowdownFault(superstep=0, machine=0, factor=0.5)

    def test_slowdown_rejects_zero_duration(self):
        with pytest.raises(FaultError):
            SlowdownFault(superstep=0, machine=0, factor=2.0, duration=0)

    def test_network_rejects_factor_below_one(self):
        with pytest.raises(FaultError):
            NetworkFault(superstep=0, bandwidth_factor=0.5)


class TestQueries:
    def test_empty_schedule(self):
        sched = FaultSchedule()
        assert sched.is_empty
        assert sched.num_events == 0
        assert sched.crashes_at(0) == ()
        assert sched.compute_factor(3, 1) == 1.0
        assert sched.network_factors(3) == (1.0, 1.0)

    def test_crashes_at_filters_by_superstep(self):
        sched = FaultSchedule(
            crashes=(CrashFault(2, 0), CrashFault(2, 1), CrashFault(5, 0))
        )
        assert len(sched.crashes_at(2)) == 2
        assert sched.crashes_at(3) == ()

    def test_slowdown_window(self):
        sched = FaultSchedule(
            slowdowns=(SlowdownFault(3, machine=1, factor=2.0, duration=2),)
        )
        assert sched.compute_factor(2, 1) == 1.0
        assert sched.compute_factor(3, 1) == 2.0
        assert sched.compute_factor(4, 1) == 2.0
        assert sched.compute_factor(5, 1) == 1.0
        # Other machines unaffected.
        assert sched.compute_factor(3, 0) == 1.0

    def test_permanent_slowdown(self):
        sched = FaultSchedule(
            slowdowns=(SlowdownFault(3, machine=0, factor=4.0, duration=None),)
        )
        assert sched.compute_factor(500, 0) == 4.0

    def test_overlapping_slowdowns_compound(self):
        sched = FaultSchedule(
            slowdowns=(
                SlowdownFault(0, machine=0, factor=2.0, duration=None),
                SlowdownFault(0, machine=0, factor=3.0, duration=None),
            )
        )
        assert sched.compute_factor(1, 0) == pytest.approx(6.0)

    def test_network_factors_compound(self):
        sched = FaultSchedule(
            network_faults=(
                NetworkFault(0, bandwidth_factor=2.0, latency_factor=1.5,
                             duration=None),
                NetworkFault(2, bandwidth_factor=2.0, duration=1),
            )
        )
        assert sched.network_factors(1) == (2.0, 1.5)
        assert sched.network_factors(2) == (4.0, 1.5)

    def test_validate_for_rejects_out_of_range_slot(self):
        sched = FaultSchedule(crashes=(CrashFault(0, machine=7),))
        with pytest.raises(FaultError, match="slot 7"):
            sched.validate_for(4)
        sched.validate_for(8)  # fits


class TestGenerate:
    def test_same_seed_identical_schedule(self):
        kwargs = dict(
            num_machines=4, num_supersteps=40, crash_rate=0.03,
            slowdown_rate=0.05, network_rate=0.02,
        )
        a = FaultSchedule.generate(seed=9, **kwargs)
        b = FaultSchedule.generate(seed=9, **kwargs)
        assert a == b

    def test_different_seed_differs(self):
        kwargs = dict(
            num_machines=4, num_supersteps=60, crash_rate=0.05,
            slowdown_rate=0.05,
        )
        a = FaultSchedule.generate(seed=1, **kwargs)
        b = FaultSchedule.generate(seed=2, **kwargs)
        assert a != b

    def test_zero_rates_empty(self):
        sched = FaultSchedule.generate(4, 100, seed=0)
        assert sched.is_empty

    def test_rates_out_of_range_rejected(self):
        with pytest.raises(FaultError, match="crash_rate"):
            FaultSchedule.generate(2, 10, crash_rate=1.5)

    def test_events_land_within_bounds(self):
        sched = FaultSchedule.generate(
            3, 25, seed=5, crash_rate=0.1, slowdown_rate=0.1,
            network_rate=0.1,
        )
        assert not sched.is_empty
        for c in sched.crashes:
            assert 0 <= c.superstep < 25 and 0 <= c.machine < 3
        for s in sched.slowdowns:
            assert 0 <= s.superstep < 25 and 0 <= s.machine < 3
            assert s.factor >= 1.0
        for f in sched.network_faults:
            assert 0 <= f.superstep < 25


class TestPersistence:
    def test_json_roundtrip(self):
        sched = FaultSchedule.generate(
            4, 30, seed=11, crash_rate=0.05, slowdown_rate=0.05,
            network_rate=0.05,
        )
        assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_save_load(self, tmp_path):
        sched = FaultSchedule(
            crashes=(CrashFault(1, 0, repeats=2),),
            slowdowns=(SlowdownFault(2, 1, factor=3.0, duration=4),),
            seed=77,
        )
        path = tmp_path / "sched.json"
        sched.save(path)
        assert FaultSchedule.load(path) == sched

    def test_malformed_json_rejected(self):
        with pytest.raises(FaultError, match="malformed"):
            FaultSchedule.from_json('{"crashes": [{"superstep"')

    def test_wrong_shape_json_rejected(self):
        with pytest.raises(FaultError):
            FaultSchedule.from_json('{"crashes": [{"bogus_field": 1}]}')

    def test_non_object_json_rejected(self):
        with pytest.raises(FaultError, match="object"):
            FaultSchedule.from_json("[1, 2, 3]")


class TestDescribe:
    def test_rows_sorted_by_superstep(self):
        sched = FaultSchedule(
            crashes=(CrashFault(5, 0),),
            slowdowns=(SlowdownFault(1, 1, factor=2.0),),
            network_faults=(NetworkFault(3, bandwidth_factor=2.0),),
        )
        rows = sched.describe()
        assert [r[1] for r in rows] == [1, 3, 5]
        assert [r[0] for r in rows] == ["slowdown", "network", "crash"]


# ---------------------------------------------------------------------- #
# Property-based tests (hypothesis)
# ---------------------------------------------------------------------- #

from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def generated_schedules(draw):
    """A sampled scenario plus the machine count it was drawn for."""
    num_machines = draw(st.integers(min_value=1, max_value=6))
    sched = FaultSchedule.generate(
        num_machines=num_machines,
        num_supersteps=draw(st.integers(min_value=0, max_value=40)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        crash_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
        slowdown_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
        slowdown_factor=draw(st.floats(min_value=1.5, max_value=8.0)),
        slowdown_duration=draw(st.integers(min_value=1, max_value=8)),
        network_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
        network_duration=draw(st.integers(min_value=1, max_value=6)),
    )
    return num_machines, sched


class TestGeneratedScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(generated_schedules())
    def test_json_round_trip_is_identity(self, case):
        _, sched = case
        assert FaultSchedule.from_json(sched.to_json()) == sched

    @settings(max_examples=60, deadline=None)
    @given(generated_schedules())
    def test_generated_schedule_is_valid_for_its_cluster(self, case):
        num_machines, sched = case
        sched.validate_for(num_machines)  # must not raise
        for event in (*sched.crashes, *sched.slowdowns):
            assert 0 <= event.machine < num_machines

    @settings(max_examples=30, deadline=None)
    @given(generated_schedules())
    def test_round_trip_preserves_json_text(self, case):
        _, sched = case
        text = sched.to_json()
        assert FaultSchedule.from_json(text).to_json() == text
