"""Unit tests for repro.service workload specs, JSON format and generator."""

import json

import pytest

from repro.errors import ServiceError, WorkloadFormatError
from repro.faults.schedule import CrashFault, FaultSchedule
from repro.service import (
    FaultSpec,
    GraphSpec,
    JobRequest,
    Workload,
    generate_workload,
)


GRAPH = GraphSpec(vertices=300, alpha=2.1, seed=0)


class TestGraphSpec:
    def test_requires_dataset_or_vertices(self):
        with pytest.raises(WorkloadFormatError):
            GraphSpec()

    def test_rejects_both_dataset_and_vertices(self):
        with pytest.raises(WorkloadFormatError):
            GraphSpec(dataset="wiki", vertices=100)

    def test_round_trip(self):
        spec = GraphSpec(vertices=500, alpha=1.9, seed=3)
        assert GraphSpec.from_jsonable(spec.to_jsonable()) == spec

    def test_load_is_deterministic(self):
        a = GraphSpec(vertices=200, seed=1).load()
        b = GraphSpec(vertices=200, seed=1).load()
        assert a.num_vertices == b.num_vertices
        assert a.num_edges == b.num_edges


class TestJobRequest:
    def test_rejects_empty_job_id(self):
        with pytest.raises(WorkloadFormatError, match="job_id"):
            JobRequest(job_id="", app="pagerank", graph=GRAPH)

    def test_rejects_negative_submit(self):
        with pytest.raises(WorkloadFormatError, match="submit_s"):
            JobRequest(job_id="j", app="pagerank", graph=GRAPH, submit_s=-1.0)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(WorkloadFormatError, match="deadline_s"):
            JobRequest(job_id="j", app="pagerank", graph=GRAPH, deadline_s=0.0)

    def test_rejects_faults_and_fault_rates_together(self):
        with pytest.raises(WorkloadFormatError, match="not both"):
            JobRequest(
                job_id="j", app="pagerank", graph=GRAPH,
                faults=FaultSchedule(crashes=(CrashFault(1, 0),)),
                fault_rates=FaultSpec(crash_rate=0.1, seed=1),
            )

    def test_absolute_deadline(self):
        job = JobRequest(job_id="j", app="pagerank", graph=GRAPH,
                         submit_s=2.0, deadline_s=0.5)
        assert job.absolute_deadline_s == 2.5
        bare = JobRequest(job_id="k", app="pagerank", graph=GRAPH)
        assert bare.absolute_deadline_s is None

    def test_explicit_faults_replayed_every_attempt(self):
        sched = FaultSchedule(crashes=(CrashFault(1, 0),), seed=4)
        job = JobRequest(job_id="j", app="pagerank", graph=GRAPH,
                         faults=sched)
        assert job.schedule_for(2, attempt=0) == sched
        assert job.schedule_for(2, attempt=1) == sched

    def test_fault_rates_vary_per_attempt(self):
        job = JobRequest(
            job_id="j", app="pagerank", graph=GRAPH,
            fault_rates=FaultSpec(crash_rate=0.5, seed=7),
        )
        first = job.schedule_for(2, attempt=0)
        again = job.schedule_for(2, attempt=0)
        second = job.schedule_for(2, attempt=1)
        assert first == again
        assert first != second

    def test_unknown_field_rejected(self):
        payload = JobRequest(job_id="j", app="pagerank",
                             graph=GRAPH).to_jsonable()
        payload["bogus"] = 1
        with pytest.raises(WorkloadFormatError, match="bogus"):
            JobRequest.from_jsonable(payload)

    def test_missing_required_field_rejected(self):
        with pytest.raises(WorkloadFormatError, match="app"):
            JobRequest.from_jsonable({"job_id": "j", "graph": GRAPH.to_jsonable()})


class TestWorkloadFormat:
    def make_workload(self):
        jobs = (
            JobRequest(job_id="b", app="pagerank", graph=GRAPH, submit_s=1.0),
            JobRequest(job_id="a", app="connected_components", graph=GRAPH,
                       submit_s=1.0, priority=2, deadline_s=0.5),
            JobRequest(
                job_id="c", app="pagerank", graph=GRAPH, submit_s=0.5,
                faults=FaultSchedule(crashes=(CrashFault(1, 0),), seed=9),
            ),
        )
        return Workload(jobs=jobs, seed=5)

    def test_round_trip_identity(self):
        workload = self.make_workload()
        assert Workload.from_json(workload.to_json()) == workload

    def test_sorted_jobs_by_submit_then_id(self):
        ids = [j.job_id for j in self.make_workload().sorted_jobs()]
        assert ids == ["c", "a", "b"]

    def test_duplicate_job_ids_rejected(self):
        job = JobRequest(job_id="dup", app="pagerank", graph=GRAPH)
        with pytest.raises(WorkloadFormatError, match="jobs\\[1\\]"):
            Workload(jobs=(job, job))

    def test_save_load(self, tmp_path):
        workload = self.make_workload()
        path = str(tmp_path / "wl.json")
        workload.save(path)
        assert Workload.load(path) == workload

    def test_bad_record_error_points_at_index(self):
        workload = self.make_workload()
        payload = json.loads(workload.to_json())
        payload["jobs"][2]["deadline_s"] = -1.0
        with pytest.raises(WorkloadFormatError, match="jobs\\[2\\]"):
            Workload.from_json(json.dumps(payload))

    def test_non_object_rejected(self):
        with pytest.raises(WorkloadFormatError):
            Workload.from_json("[1, 2]")

    def test_malformed_json_rejected(self):
        with pytest.raises(WorkloadFormatError):
            Workload.from_json('{"jobs": [')


class TestGenerator:
    def test_same_seed_same_workload(self):
        a = generate_workload(20, seed=3, deadline_fraction=0.3,
                              fault_fraction=0.2)
        b = generate_workload(20, seed=3, deadline_fraction=0.3,
                              fault_fraction=0.2)
        assert a == b
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = generate_workload(20, seed=3)
        b = generate_workload(20, seed=4)
        assert a != b

    def test_submit_times_nondecreasing(self):
        workload = generate_workload(30, seed=1, mean_interarrival_s=0.01)
        times = [j.submit_s for j in workload.jobs]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)

    def test_deadline_fraction_and_bounds(self):
        workload = generate_workload(
            40, seed=2, deadline_fraction=0.5,
            deadline_min_s=0.01, deadline_max_s=0.02,
        )
        with_deadline = [j for j in workload.jobs if j.deadline_s is not None]
        assert 0 < len(with_deadline) < 40
        assert all(0.01 <= j.deadline_s <= 0.02 for j in with_deadline)

    def test_hot_jobs_carry_explicit_crashes(self):
        workload = generate_workload(
            20, seed=5, hot_machine=1, hot_fraction=0.3, hot_repeats=2,
        )
        hot = [j for j in workload.jobs if j.faults is not None]
        assert hot
        for job in hot:
            assert all(c.machine == 1 and c.repeats == 2
                       for c in job.faults.crashes)

    def test_generator_validation(self):
        with pytest.raises(ServiceError, match="num_jobs"):
            generate_workload(0)
        with pytest.raises(ServiceError, match="mean_interarrival_s"):
            generate_workload(5, mean_interarrival_s=0.0)
        with pytest.raises(ServiceError, match="priorities"):
            generate_workload(5, priorities=0)
        with pytest.raises(ServiceError, match="deadline_fraction"):
            generate_workload(5, deadline_fraction=1.5)

    def test_generated_workload_round_trips(self):
        workload = generate_workload(
            15, seed=6, deadline_fraction=0.4, fault_fraction=0.3,
            hot_machine=0, hot_fraction=0.2,
        )
        assert Workload.from_json(workload.to_json()) == workload
