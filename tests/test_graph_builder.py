"""Unit tests for repro.graph.builder."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


def test_single_edges():
    g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
    assert g.num_edges == 2 and g.num_vertices == 3


def test_bulk_chunks_concatenate_in_order():
    b = GraphBuilder()
    b.add_edges(np.array([0, 1]), np.array([1, 2]))
    b.add_edges(np.array([2]), np.array([0]))
    g = b.build()
    assert list(zip(g.src.tolist(), g.dst.tolist())) == [(0, 1), (1, 2), (2, 0)]


def test_fixed_vertex_count():
    g = GraphBuilder(num_vertices=10).add_edge(0, 1).build()
    assert g.num_vertices == 10


def test_fixed_vertex_count_violation():
    b = GraphBuilder(num_vertices=2)
    with pytest.raises(GraphError, match="exceeds"):
        b.add_edge(0, 5)


def test_drop_self_loops():
    b = GraphBuilder(drop_self_loops=True)
    b.add_edges(np.array([0, 1, 2]), np.array([0, 2, 2]))
    g = b.build()
    assert g.num_edges == 1
    assert (g.src[0], g.dst[0]) == (1, 2)


def test_deduplicate():
    b = GraphBuilder(deduplicate=True)
    b.add_edges(np.array([0, 0, 1]), np.array([1, 1, 2]))
    assert b.build().num_edges == 2


def test_empty_build():
    g = GraphBuilder().build()
    assert g.num_vertices == 0 and g.num_edges == 0


def test_empty_build_with_fixed_vertices():
    g = GraphBuilder(num_vertices=4).build()
    assert g.num_vertices == 4 and g.num_edges == 0


def test_builder_reusable_after_build():
    b = GraphBuilder()
    b.add_edge(0, 1)
    first = b.build()
    b.add_edge(2, 3)
    second = b.build()
    assert first.num_edges == 1
    assert second.num_edges == 1
    assert (second.src[0], second.dst[0]) == (2, 3)


def test_num_pending_edges_tracks_loop_dropping():
    b = GraphBuilder(drop_self_loops=True)
    b.add_edges(np.array([0, 1]), np.array([0, 2]))
    assert b.num_pending_edges == 1


def test_negative_endpoints_rejected():
    with pytest.raises(GraphError):
        GraphBuilder().add_edges(np.array([-1]), np.array([0]))


def test_mismatched_chunk_shapes():
    with pytest.raises(GraphError):
        GraphBuilder().add_edges(np.array([0, 1]), np.array([1]))


def test_negative_fixed_vertices():
    with pytest.raises(GraphError):
        GraphBuilder(num_vertices=-2)
