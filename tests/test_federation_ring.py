"""Property-based tests (hypothesis) for the consistent-hash ring.

The two properties the federation's cache-locality story rests on:

* **balance** — with 64 virtual points per shard, no shard receives more
  than a small multiple of its fair share of routed keys;
* **minimal remapping** — adding a shard only moves keys *onto* the new
  shard, and removing a shard only moves *that shard's* keys; every
  other key keeps its placement (and hence its warm caches).
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.errors import FederationError
from repro.federation import HashRing

shard_sets = st.sets(
    st.integers(min_value=0, max_value=31), min_size=1, max_size=8
)

keys_strategy = st.lists(
    st.text(alphabet="0123456789abcdef", min_size=1, max_size=32),
    min_size=1,
    max_size=200,
    unique=True,
)


class TestRouting:
    @given(shards=shard_sets, keys=keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_route_always_lands_on_a_member(self, shards, keys):
        ring = HashRing(sorted(shards))
        for key in keys:
            assert ring.route(key) in shards

    @given(shards=shard_sets, key=st.text(max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_preference_is_a_permutation_starting_at_primary(
        self, shards, key
    ):
        ring = HashRing(sorted(shards))
        order = ring.preference(key)
        assert sorted(order) == sorted(shards)
        assert order[0] == ring.route(key)

    @given(shards=shard_sets, keys=keys_strategy)
    @settings(max_examples=40, deadline=None)
    def test_same_construction_routes_identically(self, shards, keys):
        a = HashRing(sorted(shards))
        b = HashRing(sorted(shards, reverse=True))
        assert a.assignments(keys) == b.assignments(keys)


class TestBalance:
    @given(
        num_shards=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_shard_hoards_the_keyspace(self, num_shards, seed):
        ring = HashRing(range(num_shards), replicas=64)
        keys = [f"key-{seed}-{i:04d}" for i in range(400)]
        loads = [0] * num_shards
        for key in keys:
            loads[ring.route(key)] += 1
        fair = len(keys) / num_shards
        # sha256 placement with 64 virtual points stays well inside 3x
        # fair share; the bound is loose on purpose (a property, not a
        # benchmark) but tight enough to catch a broken hash or bisect.
        assert max(loads) <= 3.0 * fair + 5
        assert min(loads) >= 0


class TestMinimalRemapping:
    @given(shards=shard_sets, keys=keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_join_only_moves_keys_onto_the_new_shard(self, shards, keys):
        new = max(shards) + 1
        before = HashRing(sorted(shards)).assignments(keys)
        after = HashRing(sorted(shards | {new})).assignments(keys)
        for key in keys:
            assert after[key] == before[key] or after[key] == new

    @given(
        shards=st.sets(
            st.integers(min_value=0, max_value=31), min_size=2, max_size=8
        ),
        keys=keys_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_leave_only_moves_the_lost_shards_keys(self, shards, keys):
        gone = min(shards)
        before = HashRing(sorted(shards)).assignments(keys)
        after = HashRing(sorted(shards - {gone})).assignments(keys)
        for key in keys:
            if before[key] != gone:
                assert after[key] == before[key]
            else:
                assert after[key] != gone


class TestValidation:
    def test_empty_ring_rejected(self):
        with pytest.raises(FederationError, match="at least one shard"):
            HashRing([])

    def test_negative_ids_rejected(self):
        with pytest.raises(FederationError, match=">= 0"):
            HashRing([-1, 0])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(FederationError, match="distinct"):
            HashRing([0, 0, 1])

    def test_bad_replicas_rejected(self):
        with pytest.raises(FederationError, match="replicas"):
            HashRing([0], replicas=0)

    def test_jsonable_shape(self):
        ring = HashRing([0, 1, 2], replicas=16)
        assert ring.to_jsonable() == {"shards": [0, 1, 2], "replicas": 16}
        assert ring.num_shards == 3
