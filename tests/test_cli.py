"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestGenerate:
    def test_synthetic_npz(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        code = main(
            ["generate", "--vertices", "500", "--alpha", "2.0",
             "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "|V|=500" in capsys.readouterr().out

    def test_synthetic_edge_list(self, tmp_path):
        out = tmp_path / "g.txt"
        assert main(["generate", "--vertices", "100", "--output", str(out)]) == 0
        from repro.graph.io import read_edge_list

        g = read_edge_list(out)
        assert g.num_vertices == 100

    def test_dataset_standin(self, tmp_path, capsys):
        out = tmp_path / "amazon.npz"
        code = main(
            ["generate", "--dataset", "amazon", "--scale", "0.002",
             "--output", str(out)]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out

    def test_roundtrip_through_process(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        main(["generate", "--vertices", "400", "--output", str(out)])
        code = main(
            ["process", "--cluster", "c4.xlarge,c4.2xlarge",
             "--app", "connected_components", "--graph-file", str(out),
             "--policy", "threads", "--scale", "0.002"]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "runtime" in text and "supersteps" in text


class TestProfile:
    def test_prints_pool_and_saves(self, tmp_path, capsys):
        out = tmp_path / "pool.json"
        code = main(
            ["profile", "--cluster", "c4.xlarge,c4.2xlarge",
             "--apps", "pagerank", "--scale", "0.001", "--output", str(out)]
        )
        assert code == 0
        pool = json.loads(out.read_text())
        assert "pagerank" in pool
        assert pool["pagerank"]["c4.xlarge"] == pytest.approx(1.0)
        assert "CCR" in capsys.readouterr().out


class TestProcess:
    def test_dataset_with_ccr_policy(self, capsys):
        code = main(
            ["process", "--cluster", "c4.xlarge,c4.8xlarge",
             "--app", "pagerank", "--dataset", "wiki",
             "--policy", "ccr", "--scale", "0.001"]
        )
        assert code == 0
        assert "pagerank" in capsys.readouterr().out

    def test_missing_graph_source(self):
        with pytest.raises(SystemExit, match="dataset"):
            main(["process", "--cluster", "c4.xlarge",
                  "--app", "pagerank", "--scale", "0.001"])

    def test_bad_cluster_name(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            main(["process", "--cluster", "z9.mega", "--app", "pagerank",
                  "--dataset", "wiki", "--scale", "0.001"])


class TestValidation:
    """Bad numeric arguments die with argparse's usage error (exit 2)."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["generate", "--vertices", "0"],
            ["generate", "--vertices", "-5"],
            ["generate", "--alpha", "1.0"],
            ["generate", "--alpha", "0.9"],
            ["generate", "--scale", "0"],
            ["generate", "--scale", "1.5"],
            ["faults", "--machines", "0"],
            ["faults", "--machines", "4", "--crash-rate", "1.5"],
            ["faults", "--machines", "4", "--slowdown-rate", "-0.1"],
            ["process", "--cluster", "c4.xlarge", "--app", "pagerank",
             "--dataset", "wiki", "--max-retries", "0"],
        ],
    )
    def test_rejected_with_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "error: argument" in capsys.readouterr().err

    def test_valid_values_still_accepted(self, tmp_path):
        out = tmp_path / "g.npz"
        assert main(["generate", "--vertices", "200", "--alpha", "1.8",
                     "--output", str(out)]) == 0


class TestFaults:
    def test_generate_prints_and_saves(self, tmp_path, capsys):
        out = tmp_path / "sched.json"
        code = main(
            ["faults", "--machines", "4", "--supersteps", "30",
             "--crash-rate", "0.05", "--slowdown-rate", "0.05",
             "--seed", "7", "--output", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "fault schedule" in text
        assert out.exists()
        from repro.faults.schedule import FaultSchedule

        sched = FaultSchedule.load(out)
        assert not sched.is_empty

    def test_process_with_fault_schedule(self, tmp_path, capsys):
        from repro.faults.schedule import CrashFault, FaultSchedule

        path = tmp_path / "crash.json"
        FaultSchedule(crashes=(CrashFault(superstep=2, machine=0),),
                      seed=3).save(path)
        code = main(
            ["process", "--cluster", "c4.xlarge,c4.2xlarge",
             "--app", "pagerank", "--dataset", "wiki", "--scale", "0.002",
             "--fault-schedule", str(path)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "resilience" in text
        assert "1 crash(es)" in text

    def test_process_reports_run_failure(self, tmp_path, capsys):
        from repro.faults.schedule import CrashFault, FaultSchedule

        path = tmp_path / "doomed.json"
        FaultSchedule(crashes=(CrashFault(superstep=2, machine=0,
                                          repeats=20),), seed=3).save(path)
        code = main(
            ["process", "--cluster", "c4.xlarge,c4.2xlarge",
             "--app", "pagerank", "--dataset", "wiki", "--scale", "0.002",
             "--fault-schedule", str(path), "--max-retries", "2"]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_strict_passes_on_converged_run(self, capsys):
        code = main(
            ["process", "--cluster", "c4.xlarge,c4.2xlarge",
             "--app", "pagerank", "--dataset", "wiki", "--scale", "0.002",
             "--strict"]
        )
        assert code == 0
        assert "warning" not in capsys.readouterr().out


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "c4.8xlarge" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["experiment", "fig6"]) == 0
        assert "experiment fig6" in capsys.readouterr().out

    def test_fig2_scaled(self, capsys):
        assert main(["experiment", "fig2", "--scale", "0.0015"]) == 0
        out = capsys.readouterr().out
        assert "prior_estimate" in out

    def test_obs_dir_records_provenance(self, tmp_path, capsys):
        from repro.obs import load_run_artifacts

        run_dir = tmp_path / "obs"
        assert main(["experiment", "fig6", "--obs-dir", str(run_dir)]) == 0
        run = load_run_artifacts(str(run_dir))
        assert run.config.get("experiment") == "fig6"
        assert "experiment/provenance" in run.span_names()


class TestObservability:
    """`repro process --obs-dir` and the `repro metrics` subcommand."""

    @staticmethod
    def _process(run_dir, app="pagerank", extra=()):
        return main(
            ["process", "--cluster", "c4.xlarge,c4.2xlarge",
             "--app", app, "--dataset", "wiki", "--scale", "0.002",
             "--obs-dir", str(run_dir), *extra]
        )

    def test_process_writes_run_artifacts(self, tmp_path, capsys):
        from repro.obs import load_run_artifacts

        run_dir = tmp_path / "run"
        assert self._process(run_dir) == 0
        out = capsys.readouterr().out
        assert "observability" in out

        run = load_run_artifacts(str(run_dir))
        names = run.span_names()
        assert "engine/run" in names
        assert "superstep" in names
        assert any(k.startswith("partition/") for k in names)
        assert run.trace is not None and run.trace["app"] == "pagerank"
        assert run.config["app"] == "pagerank"
        assert any(
            k.startswith("engine.edge_ops") for k in run.metrics["counters"]
        )

    def test_obs_does_not_change_output(self, tmp_path, capsys):
        args = ["process", "--cluster", "c4.xlarge,c4.2xlarge",
                "--app", "pagerank", "--dataset", "wiki", "--scale", "0.002"]
        assert main(args) == 0
        dark = capsys.readouterr().out
        assert main(args + ["--obs-dir", str(tmp_path / "run")]) == 0
        lit = capsys.readouterr().out
        # Identical except for the trailing artifact pointer line.
        lit_lines = [l for l in lit.splitlines() if "observability" not in l]
        assert lit_lines == dark.splitlines()

    def test_metrics_summarize(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert self._process(run_dir) == 0
        capsys.readouterr()
        assert main(["metrics", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "section" in out
        assert "engine.supersteps" in out

    def test_metrics_diff(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        assert self._process(a, app="pagerank") == 0
        assert self._process(b, app="connected_components") == 0
        capsys.readouterr()
        assert main(["metrics", str(a), "--diff", str(b)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out and "-" in out

    def test_metrics_rejects_non_run_dir(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="manifest"):
            main(["metrics", str(tmp_path)])

    def test_faulted_process_with_obs(self, tmp_path, capsys):
        from repro.faults.schedule import CrashFault, FaultSchedule
        from repro.obs import load_run_artifacts

        sched = tmp_path / "crash.json"
        FaultSchedule(crashes=(CrashFault(superstep=2, machine=0),),
                      seed=3).save(sched)
        run_dir = tmp_path / "run"
        assert self._process(
            run_dir, extra=["--fault-schedule", str(sched)]
        ) == 0
        run = load_run_artifacts(str(run_dir))
        names = run.span_names()
        assert "resilience/price" in names
        assert "resilience/crash" in names
        assert any(
            k.startswith("resilience.crashes")
            for k in run.metrics["counters"]
        )
