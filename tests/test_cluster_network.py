"""Unit tests for repro.cluster.network."""

import pytest

from repro.cluster.network import NetworkModel
from repro.errors import ClusterError


class TestTransferTime:
    def test_pure_latency(self):
        net = NetworkModel(bandwidth_gbs=1.0, latency_s=1e-3)
        assert net.transfer_time(0, rounds=3) == pytest.approx(3e-3)

    def test_pure_bandwidth(self):
        net = NetworkModel(bandwidth_gbs=2.0, latency_s=0.0)
        assert net.transfer_time(2e9) == pytest.approx(1.0)

    def test_combined(self):
        net = NetworkModel(bandwidth_gbs=1.0, latency_s=1e-4)
        assert net.transfer_time(1e9, rounds=2) == pytest.approx(1.0 + 2e-4)

    def test_latency_scale(self):
        """Scaled simulations shrink the fixed latency with the graph."""
        net = NetworkModel(bandwidth_gbs=1.0, latency_s=1e-3)
        assert net.transfer_time(0, rounds=1, latency_scale=0.01) == pytest.approx(
            1e-5
        )

    def test_zero_rounds_no_latency(self):
        net = NetworkModel(latency_s=1.0)
        assert net.transfer_time(0, rounds=0) == 0.0

    @pytest.mark.parametrize("kw", [
        {"payload_bytes": -1},
        {"payload_bytes": 0, "rounds": -1},
        {"payload_bytes": 0, "latency_scale": -0.5},
    ])
    def test_invalid_args(self, kw):
        with pytest.raises(ClusterError):
            NetworkModel().transfer_time(**kw)


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ClusterError):
            NetworkModel(bandwidth_gbs=0.0)

    def test_bad_latency(self):
        with pytest.raises(ClusterError):
            NetworkModel(latency_s=-1.0)

    def test_frozen(self):
        net = NetworkModel()
        with pytest.raises(Exception):
            net.bandwidth_gbs = 5.0
