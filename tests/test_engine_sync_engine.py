"""Unit tests for the synchronous GAS engine.

The decisive property: executing a program on a *partitioned* graph gives
bit-identical results to executing it on a single machine — the
mirror/master aggregation must be invisible to the algorithm.
"""

import numpy as np
import pytest

from repro.apps.connected_components import ConnectedComponents
from repro.apps.pagerank import PageRank
from repro.engine.distributed_graph import DistributedGraph
from repro.engine.sync_engine import SyncEngine
from repro.engine.vertex_program import SyncVertexProgram
from repro.errors import EngineError
from repro.partition import RandomHashPartitioner
from repro.partition.base import PartitionResult


def distribute(graph, machines, seed=1):
    if machines == 1:
        part = PartitionResult(
            graph, np.zeros(graph.num_edges, np.int32), 1, "single", None
        )
    else:
        part = RandomHashPartitioner(seed=seed).partition(graph, machines)
    return DistributedGraph(part)


class TestDistributionInvariance:
    """Partitioning must not change any algorithm result."""

    def test_pagerank_ranks_identical(self, powerlaw_graph):
        solo = SyncEngine().run(PageRank(), distribute(powerlaw_graph, 1))
        quad = SyncEngine().run(PageRank(), distribute(powerlaw_graph, 4))
        np.testing.assert_allclose(
            solo.result["ranks"], quad.result["ranks"], rtol=1e-12
        )

    def test_cc_labels_identical(self, powerlaw_graph):
        solo = SyncEngine().run(ConnectedComponents(), distribute(powerlaw_graph, 1))
        quad = SyncEngine().run(ConnectedComponents(), distribute(powerlaw_graph, 4))
        assert np.array_equal(solo.result["labels"], quad.result["labels"])

    def test_superstep_counts_identical(self, powerlaw_graph):
        solo = SyncEngine().run(ConnectedComponents(), distribute(powerlaw_graph, 1))
        quad = SyncEngine().run(ConnectedComponents(), distribute(powerlaw_graph, 4))
        assert solo.num_supersteps == quad.num_supersteps


class TestAccounting:
    def test_edge_ops_cover_all_edges_when_all_active(self, powerlaw_graph):
        """PageRank's first superstep gathers over every edge exactly once."""
        dg = distribute(powerlaw_graph, 4)
        trace = SyncEngine().run(PageRank(max_supersteps=1), dg)
        step = trace.supersteps[0]
        pr = PageRank()
        edge_flops = sum(
            p.work.flops + p.work.serial_flops for p in step.phases
        )
        # Total flops >= edges * per-edge cost (plus vertex ops and serial).
        assert edge_flops >= powerlaw_graph.num_edges * pr.cost.flops_per_edge_op * (
            1 - 1e-9
        )

    def test_work_distribution_follows_partition(self, powerlaw_graph):
        dg = distribute(powerlaw_graph, 4)
        trace = SyncEngine().run(PageRank(max_supersteps=1), dg)
        flops = np.array([p.work.flops for p in trace.supersteps[0].phases])
        edges = np.array([dg.local_edge_count(i) for i in range(4)])
        # Per-machine gather work tracks local edge counts (vertex ops add
        # noise, so compare shares loosely).
        np.testing.assert_allclose(
            flops / flops.sum(), edges / edges.sum(), atol=0.05
        )

    def test_comm_zero_on_single_machine(self, powerlaw_graph):
        trace = SyncEngine().run(PageRank(max_supersteps=2), distribute(powerlaw_graph, 1))
        assert trace.total_comm_bytes() == 0.0

    def test_comm_positive_when_partitioned(self, powerlaw_graph):
        trace = SyncEngine().run(PageRank(max_supersteps=2), distribute(powerlaw_graph, 4))
        assert trace.total_comm_bytes() > 0.0

    def test_frontier_shrinks_cc_work(self, powerlaw_graph):
        """CC's active frontier decays, so later supersteps count less work."""
        trace = SyncEngine().run(ConnectedComponents(), distribute(powerlaw_graph, 2))
        per_step = [
            sum(p.work.flops for p in s.phases) for s in trace.supersteps
        ]
        assert per_step[-1] < per_step[0]


class TestProgramValidation:
    def test_bad_accumulator_rejected(self, tiny_graph):
        class Bad(PageRank):
            accumulator = "product"

        with pytest.raises(EngineError, match="accumulator"):
            SyncEngine().run(Bad(), distribute(tiny_graph, 1))

    def test_bad_initial_shape_rejected(self, tiny_graph):
        class Bad(PageRank):
            def initial_values(self, graph):
                return np.ones(3)

        with pytest.raises(EngineError, match="initial_values"):
            SyncEngine().run(Bad(), distribute(tiny_graph, 1))

    def test_bad_apply_shape_rejected(self, tiny_graph):
        class Bad(PageRank):
            def apply(self, graph, values, acc, has_message):
                return np.ones(2), np.ones(2, dtype=bool)

        with pytest.raises(EngineError, match="apply"):
            SyncEngine().run(Bad(), distribute(tiny_graph, 1))

    def test_max_supersteps_caps_runaway(self, ring_graph):
        class NeverConverges(PageRank):
            def apply(self, graph, values, acc, has_message):
                return values + 1.0, np.ones(graph.num_vertices, dtype=bool)

        program = NeverConverges()
        program.max_supersteps = 7
        trace = SyncEngine().run(program, distribute(ring_graph, 1))
        assert trace.num_supersteps == 7
        assert trace.result["converged"] is False
