"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import hash_edges, hash_to_unit, make_rng, mix64, spawn_rngs


class TestMix64:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.int64)
        assert np.array_equal(mix64(x, seed=3), mix64(x, seed=3))

    def test_seed_changes_output(self):
        x = np.arange(100, dtype=np.int64)
        assert not np.array_equal(mix64(x, seed=0), mix64(x, seed=1))

    def test_bijective_on_distinct_inputs(self):
        x = np.arange(10_000, dtype=np.int64)
        assert np.unique(mix64(x)).size == x.size

    def test_output_dtype_uint64(self):
        assert mix64(np.array([1, 2, 3])).dtype == np.uint64

    def test_preserves_shape(self):
        x = np.arange(12, dtype=np.int64).reshape(3, 4)
        assert mix64(x).shape == (3, 4)

    def test_input_not_mutated(self):
        x = np.arange(10, dtype=np.int64)
        before = x.copy()
        mix64(x)
        assert np.array_equal(x, before)

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        a = mix64(np.array([0], dtype=np.int64))[0]
        b = mix64(np.array([1], dtype=np.int64))[0]
        flipped = bin(int(a) ^ int(b)).count("1")
        assert 16 <= flipped <= 48


class TestHashEdges:
    def test_asymmetric(self):
        u = np.array([1], dtype=np.int64)
        v = np.array([2], dtype=np.int64)
        assert hash_edges(u, v)[0] != hash_edges(v, u)[0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="same shape"):
            hash_edges(np.arange(3), np.arange(4))

    def test_deterministic(self):
        u = np.arange(50, dtype=np.int64)
        v = (u * 7 + 3) % 50
        assert np.array_equal(hash_edges(u, v, seed=9), hash_edges(u, v, seed=9))

    def test_distinct_edges_rarely_collide(self):
        u = np.repeat(np.arange(100, dtype=np.int64), 100)
        v = np.tile(np.arange(100, dtype=np.int64), 100)
        h = hash_edges(u, v)
        assert np.unique(h).size == h.size


class TestHashToUnit:
    def test_range(self):
        h = mix64(np.arange(10_000, dtype=np.int64))
        u = hash_to_unit(h)
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_approximately_uniform(self):
        u = hash_to_unit(mix64(np.arange(100_000, dtype=np.int64)))
        hist, _ = np.histogram(u, bins=10, range=(0, 1))
        assert hist.min() > 9_000 and hist.max() < 11_000


class TestMakeRng:
    def test_int_seed_reproducible(self):
        assert make_rng(5).integers(1 << 30) == make_rng(5).integers(1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_reproducible(self):
        x = [g.integers(1 << 30) for g in spawn_rngs(3, 4)]
        y = [g.integers(1 << 30) for g in spawn_rngs(3, 4)]
        assert x == y

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
