"""Fast smoke tests of the experiment harness at tiny scale.

The benchmarks validate the paper-shape claims at evaluation scale; these
only assert that every experiment runs end to end and returns structurally
sound results, so a refactor cannot silently break the harness.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_case2,
    run_fig2,
    run_fig6,
    run_fig8a,
    run_fig8b,
    run_fig9,
    run_fig11,
    run_table1,
    run_table2,
)

TINY = 0.0015


def test_table1_matches_paper():
    result = run_table1()
    assert result.matches_paper()
    assert len(result.rows()) == 8


def test_table2_rows_cover_datasets():
    result = run_table2(scale=TINY)
    assert len(result.rows_list) == 7
    for row in result.rows_list:
        assert row.scaled_vertices > 0 and row.scaled_edges > 0


def test_fig2_structure():
    result = run_fig2(scale=TINY, apps=("pagerank", "triangle_count"))
    assert result.machines == ("c4.xlarge", "c4.2xlarge", "c4.4xlarge", "c4.8xlarge")
    assert result.prior_estimate[-1] == pytest.approx(17.0)
    for series in result.real_speedups.values():
        assert series[0] == pytest.approx(1.0)

def test_fig6_fit():
    result = run_fig6(num_vertices=5000)
    assert result.r_squared > 0.9
    assert len(result.degrees) == len(result.probabilities)
    assert result.rows(max_points=5)


def test_fig8a_errors_ordered():
    result = run_fig8a(scale=TINY, apps=("pagerank",))
    assert result.mean_proxy_error_pct < result.mean_prior_error_pct
    assert len(result.rows()) == 4


def test_fig8b_baseline_is_m4():
    result = run_fig8b(scale=TINY, apps=("pagerank",))
    app = result.apps[0]
    assert app.machines[0] == "m4.2xlarge"
    assert app.real[0] == 1.0


def test_fig9_rows_complete():
    result = run_fig9(
        scale=TINY,
        apps=("connected_components",),
        graphs=("amazon",),
        algorithms=("random_hash", "hybrid"),
    )
    assert len(result.rows_list) == 2
    for row in result.rows_list:
        assert row.prior_runtime > 0 and row.ccr_runtime > 0
    assert set(result.algorithm_speedups()) == {"random_hash", "hybrid"}


def test_fig10_case2_structure():
    result = run_case2(
        scale=TINY,
        apps=("pagerank",),
        graphs=("wiki",),
        algorithms=("hybrid",),
    )
    app = result.apps[0]
    assert set(app.runtime) == {"default", "prior", "ccr"}
    assert app.speedup("prior") > 0.5
    # Both heterogeneity-aware systems beat the default even at tiny scale.
    assert app.speedup("ccr") > 1.0


def test_fig11_points_per_machine_app():
    result = run_fig11(scale=TINY, apps=("pagerank",), machines=("c4.xlarge", "c4.2xlarge"))
    assert len(result.points) == 2
    base = next(p for p in result.points if p.machine == "c4.xlarge")
    assert base.speedup == pytest.approx(1.0)
