"""PageRank correctness against NetworkX and analytic cases."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.pagerank import PageRank
from repro.engine.distributed_graph import DistributedGraph
from repro.engine.sync_engine import SyncEngine
from repro.partition import RandomHashPartitioner
from repro.partition.base import PartitionResult


def run_pagerank(graph, machines=1, **kwargs):
    if machines == 1:
        part = PartitionResult(
            graph, np.zeros(graph.num_edges, np.int32), 1, "single", None
        )
    else:
        part = RandomHashPartitioner(seed=2).partition(graph, machines)
    return SyncEngine().run(PageRank(**kwargs), DistributedGraph(part))


class TestAgainstNetworkX:
    def test_powerlaw_graph(self, powerlaw_graph):
        trace = run_pagerank(powerlaw_graph, machines=3, tolerance=1e-8)
        ours = trace.result["normalized_ranks"]
        nxg = powerlaw_graph.to_networkx()
        ref = nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500)
        ref = np.array([ref[i] for i in range(powerlaw_graph.num_vertices)])
        np.testing.assert_allclose(ours, ref, atol=1e-7)

    def test_parallel_edges_weighted(self):
        """Parallel edges carry proportional rank, as a multigraph should."""
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges([(0, 1), (0, 1), (0, 2), (1, 0), (2, 0)],
                               num_vertices=3)
        trace = run_pagerank(g, tolerance=1e-10)
        ranks = trace.result["normalized_ranks"]
        # Vertex 1 receives twice vertex 2's inbound share from 0.
        assert ranks[1] > ranks[2]


class TestAnalyticCases:
    def test_ring_is_uniform(self, ring_graph):
        """Symmetry: every vertex of a cycle has identical rank."""
        trace = run_pagerank(ring_graph, tolerance=1e-10)
        ranks = trace.result["ranks"]
        np.testing.assert_allclose(ranks, ranks[0])
        assert ranks[0] == pytest.approx(1.0)

    def test_rank_sum_is_vertex_count(self, powerlaw_graph):
        """The unnormalised fixed point sums to |V| (no dangling nodes)."""
        trace = run_pagerank(powerlaw_graph, tolerance=1e-9)
        assert trace.result["ranks"].sum() == pytest.approx(
            powerlaw_graph.num_vertices, rel=1e-6
        )

    def test_star_hub_collects_rank(self):
        from repro.graph.digraph import DiGraph

        # Leaves all point at the hub, hub points back at leaf 1.
        edges = [(i, 0) for i in range(1, 6)] + [(0, 1)]
        g = DiGraph.from_edges(edges, num_vertices=6)
        ranks = run_pagerank(g, tolerance=1e-10).result["ranks"]
        assert ranks[0] == ranks.max()

    def test_damping_limits(self):
        """d -> 0 makes all ranks equal regardless of structure."""
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)], num_vertices=3)
        ranks = run_pagerank(g, damping=0.01, tolerance=1e-12).result["ranks"]
        np.testing.assert_allclose(ranks, 1.0, atol=0.05)


class TestConvergence:
    def test_tolerance_controls_supersteps(self, powerlaw_graph):
        loose = run_pagerank(powerlaw_graph, tolerance=1e-1)
        tight = run_pagerank(powerlaw_graph, tolerance=1e-8)
        assert tight.result["supersteps"] > loose.result["supersteps"]

    def test_converged_flag(self, powerlaw_graph):
        trace = run_pagerank(powerlaw_graph, tolerance=1e-6)
        assert trace.result["converged"] is True


class TestValidation:
    @pytest.mark.parametrize("damping", [0.0, 1.0, -0.5])
    def test_damping_bounds(self, damping):
        with pytest.raises(ValueError):
            PageRank(damping=damping)

    def test_tolerance_positive(self):
        with pytest.raises(ValueError):
            PageRank(tolerance=0.0)
