"""Tests for repro.engine.resilient (fault-aware pricing + runtime).

The contract under test, in order of importance:

1. *Opt-in*: with no faults to inject, the resilient path is the static
   path — reports match field for field.
2. *Recovery invariant*: faults change the bill, never the answer —
   application results under crash/replay equal the fault-free results.
3. *Determinism*: same seed, same schedule, same report.
4. *Bounded recovery*: a crash site that keeps failing raises
   RecoveryError instead of replaying forever.
"""

import numpy as np
import pytest

from repro.apps.pagerank import PageRank
from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.engine.report import ExecutionReport, simulate_execution
from repro.engine.resilient import (
    ResilientExecutionReport,
    ResilientRuntime,
    simulate_resilient_execution,
)
from repro.engine.runtime import GraphProcessingSystem
from repro.engine.distributed_graph import DistributedGraph
from repro.errors import ConvergenceError, FaultError, RecoveryError
from repro.faults.checkpoint import CheckpointPolicy, RetryPolicy
from repro.faults.schedule import (
    CrashFault,
    FaultSchedule,
    NetworkFault,
    SlowdownFault,
)
from repro.partition import make_partitioner
from repro.partition.weights import uniform_weights

SCALE = 0.002


@pytest.fixture(scope="module")
def cluster():
    return Cluster(
        [get_machine("m4.2xlarge")] * 2 + [get_machine("c4.2xlarge")] * 2,
        perf=PerformanceModel(model_scale=SCALE),
    )


@pytest.fixture(scope="module")
def graph():
    from repro.graph.datasets import load_dataset

    return load_dataset("wiki", scale=SCALE)


@pytest.fixture(scope="module")
def baseline(cluster, graph):
    """Fault-free trace + report on the shared cluster."""
    outcome = GraphProcessingSystem(cluster).run(
        PageRank(),
        graph,
        make_partitioner("hybrid"),
        weights=uniform_weights(cluster),
    )
    return outcome


def assert_reports_identical(a: ExecutionReport, b: ExecutionReport):
    assert type(a) is type(b)
    assert a.app == b.app
    assert a.runtime_seconds == b.runtime_seconds
    assert a.energy_joules == b.energy_joules
    assert a.machines == b.machines
    assert a.num_supersteps == b.num_supersteps
    assert a.warnings == b.warnings
    assert set(a.result) == set(b.result)
    for key in a.result:
        assert np.array_equal(a.result[key], b.result[key]), key


class TestOptIn:
    def test_none_schedule_identical(self, baseline, cluster):
        report = simulate_resilient_execution(baseline.trace, cluster)
        assert_reports_identical(report, baseline.report)

    def test_empty_schedule_identical(self, baseline, cluster):
        report = simulate_resilient_execution(
            baseline.trace, cluster, schedule=FaultSchedule()
        )
        assert_reports_identical(report, baseline.report)

    def test_runtime_fault_free_identical(self, baseline, cluster, graph):
        outcome = ResilientRuntime(cluster, partitioner="hybrid").run(
            "pagerank", graph
        )
        assert_reports_identical(outcome.report, baseline.report)

    def test_faulted_run_returns_resilient_report(self, baseline, cluster):
        sched = FaultSchedule(
            slowdowns=(SlowdownFault(0, machine=0, factor=2.0, duration=1),)
        )
        report = simulate_resilient_execution(
            baseline.trace, cluster, schedule=sched
        )
        assert isinstance(report, ResilientExecutionReport)


class TestCrashRecovery:
    def crash_report(self, baseline, cluster, **kwargs):
        sched = FaultSchedule(
            crashes=(CrashFault(superstep=5, machine=1),), seed=3
        )
        return simulate_resilient_execution(
            baseline.trace, cluster, schedule=sched, **kwargs
        )

    def test_results_match_fault_free(self, baseline, cluster):
        report = self.crash_report(baseline, cluster)
        assert np.allclose(
            report.result["ranks"], baseline.report.result["ranks"]
        )

    def test_runtime_and_energy_strictly_higher(self, baseline, cluster):
        report = self.crash_report(baseline, cluster)
        assert report.runtime_seconds > baseline.report.runtime_seconds
        assert report.energy_joules > baseline.report.energy_joules

    def test_recovery_stats_accounted(self, baseline, cluster):
        report = self.crash_report(
            baseline, cluster, checkpoint=CheckpointPolicy(interval=3)
        )
        r = report.recovery
        assert r.num_crashes == 1
        assert r.lost_attempts == 1
        # Crash at superstep 5 with checkpoints after 2 and 5... the crash
        # interrupts superstep 5, so the last snapshot is after step 2:
        # steps 3 and 4 are replayed.
        assert r.replayed_supersteps == 2
        assert r.restart_seconds > 0
        assert r.backoff_seconds > 0
        kinds = [e.kind for e in report.events]
        assert "crash" in kinds and "checkpoint" in kinds

    def test_no_checkpoints_replays_from_start(self, baseline, cluster):
        report = self.crash_report(
            baseline, cluster, checkpoint=CheckpointPolicy(interval=0)
        )
        assert report.recovery.num_checkpoints == 0
        assert report.recovery.replayed_supersteps == 5

    def test_deterministic_given_seed(self, baseline, cluster):
        a = self.crash_report(baseline, cluster)
        b = self.crash_report(baseline, cluster)
        assert_reports_identical(a, b)
        assert a.recovery == b.recovery
        assert a.events == b.events

    def test_retry_budget_enforced(self, baseline, cluster):
        sched = FaultSchedule(
            crashes=(CrashFault(superstep=5, machine=1, repeats=5),), seed=3
        )
        with pytest.raises(RecoveryError, match="retry budget"):
            simulate_resilient_execution(
                baseline.trace,
                cluster,
                schedule=sched,
                retry=RetryPolicy(max_retries=2),
            )

    def test_repeats_within_budget_recover(self, baseline, cluster):
        sched = FaultSchedule(
            crashes=(CrashFault(superstep=5, machine=1, repeats=3),), seed=3
        )
        report = simulate_resilient_execution(
            baseline.trace, cluster, schedule=sched,
            retry=RetryPolicy(max_retries=3),
        )
        assert report.recovery.num_crashes == 3
        assert np.allclose(
            report.result["ranks"], baseline.report.result["ranks"]
        )


class TestDegradation:
    def test_slowdown_stretches_barrier(self, baseline, cluster):
        sched = FaultSchedule(
            slowdowns=(SlowdownFault(0, machine=0, factor=4.0, duration=None),)
        )
        report = simulate_resilient_execution(
            baseline.trace, cluster, schedule=sched,
            checkpoint=CheckpointPolicy(interval=0),
        )
        assert report.runtime_seconds > baseline.report.runtime_seconds
        # The straggler's busy time grew 4x; others unchanged.
        assert report.machines[0].busy_seconds == pytest.approx(
            4.0 * baseline.report.machines[0].busy_seconds
        )
        assert report.machines[1].busy_seconds == pytest.approx(
            baseline.report.machines[1].busy_seconds
        )

    def test_network_fault_stretches_comm(self, baseline, cluster):
        sched = FaultSchedule(
            network_faults=(
                NetworkFault(0, bandwidth_factor=10.0, latency_factor=10.0,
                             duration=None),
            )
        )
        report = simulate_resilient_execution(
            baseline.trace, cluster, schedule=sched,
            checkpoint=CheckpointPolicy(interval=0),
        )
        for faulted, clean in zip(report.machines, baseline.report.machines):
            assert faulted.comm_seconds > clean.comm_seconds

    def test_schedule_slot_out_of_range_rejected(self, baseline, cluster):
        sched = FaultSchedule(crashes=(CrashFault(0, machine=9),))
        with pytest.raises(FaultError, match="slot 9"):
            simulate_resilient_execution(
                baseline.trace, cluster, schedule=sched
            )


class TestRebalance:
    SCHED = FaultSchedule(
        slowdowns=(SlowdownFault(4, machine=0, factor=4.0, duration=None),),
        seed=5,
    )
    CKPT = CheckpointPolicy(interval=0, restart_seconds=0.0)

    def test_rebalance_beats_no_rebalance(self, cluster, graph):
        with_rb = ResilientRuntime(
            cluster, partitioner="hybrid", schedule=self.SCHED,
            checkpoint=self.CKPT,
        ).run("pagerank", graph)
        without_rb = ResilientRuntime(
            cluster, partitioner="hybrid", schedule=self.SCHED,
            checkpoint=self.CKPT, rebalance=False,
        ).run("pagerank", graph)
        assert with_rb.report.recovery.rebalanced
        assert not without_rb.report.recovery.rebalanced
        assert (
            with_rb.report.runtime_seconds
            < without_rb.report.runtime_seconds
        )

    def test_rebalanced_results_still_correct(self, cluster, graph, baseline):
        outcome = ResilientRuntime(
            cluster, partitioner="hybrid", schedule=self.SCHED,
            checkpoint=self.CKPT,
        ).run("pagerank", graph)
        assert outcome.rebalanced_partition is not None
        assert np.allclose(
            outcome.report.result["ranks"], baseline.report.result["ranks"]
        )

    def test_rebalance_feeds_monitor(self, cluster, graph):
        from repro.core.online import OnlineCCRMonitor
        from repro.core.profiler import ProxyProfiler
        from repro.core.proxy import ProxySet

        monitor = OnlineCCRMonitor(
            profiler=ProxyProfiler(
                proxies=ProxySet(num_vertices=1200, seed=61)
            ),
            apps=("pagerank",),
        )
        monitor.observe(cluster)
        ResilientRuntime(
            cluster, partitioner="hybrid", schedule=self.SCHED,
            checkpoint=self.CKPT, monitor=monitor,
        ).run("pagerank", graph)
        assert monitor.degradation("m4.2xlarge") > 1.0


class TestStrictConvergence:
    def test_nonconvergence_raises_in_strict_mode(self, graph):
        app = PageRank(max_supersteps=2)
        app.strict = True
        part = make_partitioner("random_hash").partition(graph, 2)
        with pytest.raises(ConvergenceError, match="did not converge"):
            app.execute(DistributedGraph(part))

    def test_nonconvergence_warns_in_report(self, cluster, graph):
        outcome = GraphProcessingSystem(cluster).run(
            PageRank(max_supersteps=2),
            graph,
            make_partitioner("hybrid"),
            weights=uniform_weights(cluster),
        )
        assert outcome.report.result["converged"] is False
        assert any("did not converge" in w for w in outcome.report.warnings)

    def test_converged_report_has_no_warnings(self, baseline):
        assert baseline.report.warnings == ()


class TestSlotTaggedEnergy:
    def test_energy_attribution_survives_extra_samples(self, cluster):
        """Per-slot energy no longer depends on a k % m sample ordering."""
        from repro.cluster.power import EnergyCounter

        counter = EnergyCounter()
        # Recovery-style stream: slot 1 records twice in a row (a replay),
        # breaking any round-robin assumption.
        specs = cluster.machines
        counter.record(specs[0], 1.0, 2.0, slot=0)
        counter.record(specs[1], 1.0, 2.0, slot=1)
        counter.record(specs[1], 1.0, 2.0, slot=1)
        by_slot = counter.by_slot()
        assert set(by_slot) == {0, 1}
        # Slots 0 and 1 hold the same machine spec, so slot 1's two
        # identical samples must cost exactly twice slot 0's one.
        assert specs[0].name == specs[1].name
        assert by_slot[1] == pytest.approx(2 * by_slot[0])
