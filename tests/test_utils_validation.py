"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d,
    check_in_range,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_and_returns(self):
        assert check_positive("x", 2.5) == 2.5

    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError, match="> 0"):
            check_positive("x", 0)

    def test_nonstrict_accepts_zero(self):
        assert check_positive("x", 0, strict=False) == 0

    def test_nonstrict_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_positive("x", -1, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("nan"))

    def test_message_contains_name(self):
        with pytest.raises(ValueError, match="myparam"):
            check_positive("myparam", -3)


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_bounds(self, v):
        assert check_probability("p", v) == v

    @pytest.mark.parametrize("v", [-0.01, 1.01, float("inf")])
    def test_rejects_outside(self, v):
        with pytest.raises(ValueError):
            check_probability("p", v)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_inside_exclusive(self):
        assert check_in_range("x", 1.5, 1.0, 2.0, inclusive=False) == 1.5


class TestCheckArray1d:
    def test_coerces_list(self):
        out = check_array_1d("a", [1, 2, 3], dtype=np.int64)
        assert out.dtype == np.int64 and out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_array_1d("a", np.zeros((2, 2)))
