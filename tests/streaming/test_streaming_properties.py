"""Property-based tests (hypothesis) on mutation-stream invariants.

Mirrors the style of ``tests/test_properties_hypothesis.py``: randomised
sweeps over the streaming layer's load-bearing contracts — generator
determinism, liveness/dangling-edge invariants under application, the
inversion round-trip, and JSON serialisation.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.powerlaw.generator import generate_power_law_graph
from repro.streaming import (
    MutationStream,
    apply_batch,
    generate_stream,
)

patterns = st.sampled_from(("churn", "growth", "burst"))
seeds = st.integers(min_value=0, max_value=2**32 - 1)
batch_counts = st.integers(min_value=1, max_value=6)
op_counts = st.integers(min_value=1, max_value=12)


def base_graph(seed):
    return generate_power_law_graph(
        num_vertices=60 + (seed % 5) * 17, alpha=2.1, seed=seed % 97
    )


def edge_multiset(graph):
    src, dst = graph.edges()
    return sorted(zip(src.tolist(), dst.tolist()))


class TestGeneratorProperties:
    @given(patterns, seeds, batch_counts, op_counts)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_stream(self, pattern, seed, batches, ops):
        graph = base_graph(seed)
        a = generate_stream(
            graph, pattern=pattern, num_batches=batches,
            ops_per_batch=ops, seed=seed,
        )
        b = generate_stream(
            graph, pattern=pattern, num_batches=batches,
            ops_per_batch=ops, seed=seed,
        )
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    @given(patterns, seeds, batch_counts, op_counts)
    @settings(max_examples=40, deadline=None)
    def test_generated_streams_validate_and_apply(
        self, pattern, seed, batches, ops
    ):
        graph = base_graph(seed)
        stream = generate_stream(
            graph, pattern=pattern, num_batches=batches,
            ops_per_batch=ops, seed=seed,
        )
        assert stream.num_batches == batches
        assert stream.base_vertices == graph.num_vertices
        stream.validate_for(graph.num_vertices)
        for _ in stream.replay(graph):
            pass  # every batch must apply cleanly


class TestApplicationInvariants:
    @given(patterns, seeds)
    @settings(max_examples=40, deadline=None)
    def test_no_dangling_edges_after_any_batch(self, pattern, seed):
        graph = base_graph(seed)
        stream = generate_stream(
            graph, pattern=pattern, num_batches=4, ops_per_batch=10, seed=seed
        )
        for result in stream.replay(graph):
            src, dst = result.graph.edges()
            # Every endpoint of every surviving edge is live.
            assert result.live[src].all()
            assert result.live[dst].all()
            # edge_origin maps surviving edges back to identical endpoints.
            assert result.edge_origin.shape == (result.graph.num_edges,)

    @given(patterns, seeds)
    @settings(max_examples=30, deadline=None)
    def test_batch_application_is_deterministic(self, pattern, seed):
        graph = base_graph(seed)
        stream = generate_stream(
            graph, pattern=pattern, num_batches=3, ops_per_batch=8, seed=seed
        )
        first = [edge_multiset(r.graph) for r in stream.replay(graph)]
        second = [edge_multiset(r.graph) for r in stream.replay(graph)]
        assert first == second

    @given(patterns, seeds)
    @settings(max_examples=40, deadline=None)
    def test_inverse_round_trips_edges_and_liveness(self, pattern, seed):
        graph = base_graph(seed)
        stream = generate_stream(
            graph, pattern=pattern, num_batches=1, ops_per_batch=12, seed=seed
        )
        result = apply_batch(graph, stream.batches[0])
        restored = apply_batch(result.graph, result.inverse, live=result.live)
        assert edge_multiset(restored.graph) == edge_multiset(graph)
        # All original ids live again; any appended ids are tombstoned.
        assert restored.live[: graph.num_vertices].all()
        assert not restored.live[graph.num_vertices:].any()

    @given(patterns, seeds)
    @settings(max_examples=30, deadline=None)
    def test_edge_origin_preserves_endpoints(self, pattern, seed):
        graph = base_graph(seed)
        stream = generate_stream(
            graph, pattern=pattern, num_batches=2, ops_per_batch=10, seed=seed
        )
        src0, dst0 = graph.edges()
        current = graph
        for result in stream.replay(graph):
            src, dst = result.graph.edges()
            prev_src, prev_dst = current.edges()
            surviving = result.edge_origin >= 0
            origin = result.edge_origin[surviving]
            np.testing.assert_array_equal(src[surviving], prev_src[origin])
            np.testing.assert_array_equal(dst[surviving], prev_dst[origin])
            current = result.graph


class TestJsonProperties:
    @given(patterns, seeds, batch_counts)
    @settings(max_examples=40, deadline=None)
    def test_json_round_trip_is_identity(self, pattern, seed, batches):
        graph = base_graph(seed)
        stream = generate_stream(
            graph, pattern=pattern, num_batches=batches,
            ops_per_batch=6, seed=seed,
        )
        assert MutationStream.from_json(stream.to_json()) == stream

    @given(patterns, seeds, batch_counts)
    @settings(max_examples=30, deadline=None)
    def test_fingerprint_survives_round_trip(self, pattern, seed, batches):
        graph = base_graph(seed)
        stream = generate_stream(
            graph, pattern=pattern, num_batches=batches,
            ops_per_batch=6, seed=seed,
        )
        round_tripped = MutationStream.from_json(stream.to_json())
        assert round_tripped.fingerprint() == stream.fingerprint()
