"""Property-based tests (hypothesis) on stream-checkpoint round-trips.

The load-bearing recovery contract: a :class:`StreamCheckpoint` cut at
*any* batch cursor, serialized to canonical JSON and restored, must
continue the run byte-identically to the undisturbed trace — for every
Case 1 partitioning strategy and on both kernel backends.  Also sweeps
the serialization invariants themselves (canonical-JSON idempotence,
fingerprint stability, validation of tampered payloads).
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import make_app
from repro.errors import StreamCheckpointError
from repro.experiments.common import CASE1_PARTITIONERS, case1_cluster
from repro.faults.checkpoint import CheckpointPolicy
from repro.kernels.backend import use_backend
from repro.partition import make_partitioner
from repro.powerlaw.generator import generate_power_law_graph
from repro.streaming import (
    CheckpointCustody,
    ResilientStreamingSystem,
    StreamCheckpoint,
    StreamingSystem,
    generate_stream,
)

APP = "pagerank"
HALO = 1
WEIGHTS = None
BACKENDS = ("scalar", "vectorized")
NUM_BATCHES = 3

strategies_st = st.sampled_from(CASE1_PARTITIONERS)
backends_st = st.sampled_from(BACKENDS)
cursors_st = st.integers(min_value=0, max_value=NUM_BATCHES)
seeds_st = st.integers(min_value=0, max_value=2**16 - 1)

_graph = generate_power_law_graph(num_vertices=240, alpha=2.1, seed=77)
_stream = generate_stream(
    _graph, pattern="churn", num_batches=NUM_BATCHES, ops_per_batch=8, seed=5
)

#: Per-(strategy, backend) caches: the plain trace and the custody of a
#: fully checkpointed run are deterministic, so each combination is
#: computed once and reused across hypothesis examples.
_plain_traces = {}
_custodies = {}


def _partitioner(strategy):
    return make_partitioner(strategy, seed=7)


def _plain_trace(strategy, backend):
    key = (strategy, backend)
    if key not in _plain_traces:
        with use_backend(backend):
            result = StreamingSystem(case1_cluster(0.01), halo=HALO).run(
                make_app(APP), _graph, _stream, _partitioner(strategy)
            )
        _plain_traces[key] = result.trace_json()
    return _plain_traces[key]


def _checkpoint_at(strategy, backend, cursor) -> StreamCheckpoint:
    """The cursor-``cursor`` snapshot of a fully checkpointed run."""
    key = (strategy, backend)
    if key not in _custodies:
        custody = CheckpointCustody()
        with use_backend(backend):
            ResilientStreamingSystem(
                case1_cluster(0.01),
                halo=HALO,
                custody=custody,
                job_id="prop",
                checkpoint=CheckpointPolicy(interval=1),
            ).run_resilient(
                make_app(APP), _graph, _stream, _partitioner(strategy)
            )
        _custodies[key] = custody
    # interval=1 snapshots every epoch: entries[c] holds cursor c.
    return _custodies[key]._entries["prop"][cursor][1]


class TestResumeByteIdentity:
    @given(strategies_st, backends_st, cursors_st)
    @settings(max_examples=25, deadline=None)
    def test_restored_checkpoint_continues_byte_identically(
        self, strategy, backend, cursor
    ):
        snapshot = _checkpoint_at(strategy, backend, cursor)
        assert snapshot.batch_cursor == cursor
        restored = StreamCheckpoint.from_jsonable(
            json.loads(snapshot.canonical_json())
        )
        with use_backend(backend):
            outcome = ResilientStreamingSystem(
                case1_cluster(0.01), halo=HALO
            ).run_resilient(
                make_app(APP),
                _graph,
                _stream,
                _partitioner(strategy),
                resume_from=restored,
            )
        assert outcome.recovery.resumed_from_batch == cursor
        assert outcome.result.trace_json() == _plain_trace(strategy, backend)

    @given(strategies_st, cursors_st)
    @settings(max_examples=10, deadline=None)
    def test_backends_agree_on_checkpoint_bytes(self, strategy, cursor):
        scalar = _checkpoint_at(strategy, "scalar", cursor)
        vectorized = _checkpoint_at(strategy, "vectorized", cursor)
        assert scalar.canonical_json() == vectorized.canonical_json()
        assert scalar.fingerprint() == vectorized.fingerprint()


class TestSerializationInvariants:
    @given(strategies_st, cursors_st)
    @settings(max_examples=15, deadline=None)
    def test_canonical_json_round_trip_is_idempotent(self, strategy, cursor):
        snapshot = _checkpoint_at(strategy, "scalar", cursor)
        once = StreamCheckpoint.from_jsonable(
            json.loads(snapshot.canonical_json())
        )
        twice = StreamCheckpoint.from_jsonable(
            json.loads(once.canonical_json())
        )
        assert once.canonical_json() == snapshot.canonical_json()
        assert twice.canonical_json() == snapshot.canonical_json()
        assert twice.fingerprint() == snapshot.fingerprint()

    @given(strategies_st, cursors_st, seeds_st)
    @settings(max_examples=15, deadline=None)
    def test_unknown_fields_always_rejected(self, strategy, cursor, seed):
        snapshot = _checkpoint_at(strategy, "scalar", cursor)
        payload = json.loads(snapshot.canonical_json())
        payload[f"extra_{seed}"] = seed
        with pytest.raises(StreamCheckpointError, match="extra_"):
            StreamCheckpoint.from_jsonable(payload)

    @given(strategies_st, cursors_st)
    @settings(max_examples=10, deadline=None)
    def test_cursor_tampering_rejected(self, strategy, cursor):
        snapshot = _checkpoint_at(strategy, "scalar", cursor)
        with pytest.raises(StreamCheckpointError, match="epoch records"):
            dataclasses.replace(
                snapshot, batch_cursor=snapshot.batch_cursor + 3
            )
