"""Unit tests for repro.streaming.mutations (ops, batches, streams)."""

import json

import numpy as np
import pytest

from repro.errors import StreamError, StreamFormatError
from repro.graph.digraph import DiGraph
from repro.streaming import (
    STREAM_FORMAT_VERSION,
    AddEdge,
    AddVertices,
    MutationBatch,
    MutationStream,
    RemoveEdge,
    RemoveVertex,
    ReviveVertex,
    apply_batch,
)


def edge_multiset(graph):
    src, dst = graph.edges()
    return sorted(zip(src.tolist(), dst.tolist()))


class TestOpValidation:
    def test_add_vertices_rejects_zero(self):
        with pytest.raises(StreamError):
            AddVertices(0)

    def test_remove_vertex_rejects_negative(self):
        with pytest.raises(StreamError):
            RemoveVertex(-1)

    def test_revive_vertex_rejects_negative(self):
        with pytest.raises(StreamError):
            ReviveVertex(-3)

    def test_edge_ops_reject_negative_endpoints(self):
        with pytest.raises(StreamError):
            AddEdge(-1, 0)
        with pytest.raises(StreamError):
            RemoveEdge(0, -2)


class TestApplyBatch:
    def test_add_edge_appends_in_canonical_order(self, tiny_graph):
        result = apply_batch(
            tiny_graph, MutationBatch((AddEdge(4, 0), AddEdge(1, 3)))
        )
        assert result.graph.num_edges == tiny_graph.num_edges + 2
        src, dst = result.graph.edges()
        assert (int(src[-2]), int(dst[-2])) == (4, 0)
        assert (int(src[-1]), int(dst[-1])) == (1, 3)
        # Surviving edges keep their relative order and origins.
        assert result.edge_origin[: tiny_graph.num_edges].tolist() == list(
            range(tiny_graph.num_edges)
        )
        assert result.edge_origin[-2:].tolist() == [-1, -1]

    def test_remove_edge_drops_last_copy_only(self, tiny_graph):
        # tiny_graph holds (0, 1) twice: indices 0 and 6.
        result = apply_batch(tiny_graph, MutationBatch((RemoveEdge(0, 1),)))
        assert result.graph.num_edges == tiny_graph.num_edges - 1
        assert 6 not in result.edge_origin.tolist()
        assert 0 in result.edge_origin.tolist()

    def test_remove_missing_edge_rejected(self, tiny_graph):
        with pytest.raises(StreamError, match="no such edge"):
            apply_batch(tiny_graph, MutationBatch((RemoveEdge(4, 4),)))

    def test_remove_vertex_tombstones_and_strips_edges(self, tiny_graph):
        result = apply_batch(tiny_graph, MutationBatch((RemoveVertex(0),)))
        assert result.graph.num_vertices == tiny_graph.num_vertices
        assert not result.live[0]
        src, dst = result.graph.edges()
        assert 0 not in src.tolist() and 0 not in dst.tolist()

    def test_dead_vertex_rejects_new_edges(self, tiny_graph):
        with pytest.raises(StreamError, match="unknown vertex 0"):
            apply_batch(
                tiny_graph,
                MutationBatch((RemoveVertex(0), AddEdge(0, 1))),
            )

    def test_add_vertices_appends_live_ids(self, tiny_graph):
        result = apply_batch(
            tiny_graph, MutationBatch((AddVertices(2), AddEdge(6, 1)))
        )
        assert result.graph.num_vertices == 7
        assert result.live[5] and result.live[6]
        assert result.num_live == 7

    def test_revive_requires_dead_vertex(self, tiny_graph):
        with pytest.raises(StreamError, match="is live"):
            apply_batch(tiny_graph, MutationBatch((ReviveVertex(2),)))

    def test_ops_see_earlier_ops_in_same_batch(self, tiny_graph):
        result = apply_batch(
            tiny_graph,
            MutationBatch(
                (RemoveVertex(3), ReviveVertex(3), AddEdge(3, 4))
            ),
        )
        assert result.live[3]
        assert (3, 4) in edge_multiset(result.graph)
        # 3's original incident edges died with the tombstone.
        assert (2, 3) not in edge_multiset(result.graph)

    def test_touched_covers_endpoints(self, tiny_graph):
        result = apply_batch(
            tiny_graph, MutationBatch((AddEdge(4, 1), RemoveEdge(2, 3)))
        )
        assert set(result.touched) >= {1, 2, 3, 4}

    def test_bad_live_mask_shape_rejected(self, tiny_graph):
        with pytest.raises(StreamError, match="shape"):
            apply_batch(
                tiny_graph,
                MutationBatch(),
                live=np.ones(3, dtype=bool),
            )


class TestInversion:
    def test_inverse_restores_edges_and_liveness(self, tiny_graph):
        batch = MutationBatch(
            (
                AddEdge(4, 0),
                RemoveVertex(0),
                AddVertices(1),
                AddEdge(5, 4),
                RemoveEdge(5, 4),
            )
        )
        result = apply_batch(tiny_graph, batch)
        restored = apply_batch(result.graph, result.inverse, live=result.live)
        assert edge_multiset(restored.graph) == edge_multiset(tiny_graph)
        # Original ids all live again; appended id stays a dead tombstone.
        assert restored.live[: tiny_graph.num_vertices].all()
        assert not restored.live[5]

    def test_remove_vertex_inverse_restores_incident_edges(self, tiny_graph):
        result = apply_batch(tiny_graph, MutationBatch((RemoveVertex(0),)))
        restored = apply_batch(result.graph, result.inverse, live=result.live)
        assert edge_multiset(restored.graph) == edge_multiset(tiny_graph)
        assert restored.live.all()


class TestValidateFor:
    def test_unknown_vertex_names_batch(self):
        stream = MutationStream(
            batches=(
                MutationBatch((AddEdge(0, 1),)),
                MutationBatch((RemoveVertex(99),)),
            )
        )
        with pytest.raises(StreamError, match=r"batch 1: remove_vertex"):
            stream.validate_for(5)

    def test_liveness_tracked_across_batches(self):
        stream = MutationStream(
            batches=(
                MutationBatch((RemoveVertex(1),)),
                MutationBatch((AddEdge(0, 1),)),
            )
        )
        with pytest.raises(StreamError, match="batch 1"):
            stream.validate_for(4)

    def test_added_ids_become_valid(self):
        stream = MutationStream(
            batches=(
                MutationBatch((AddVertices(2),)),
                MutationBatch((AddEdge(4, 5),)),
            )
        )
        stream.validate_for(4)  # ids 4 and 5 exist after batch 0

    def test_base_vertices_mismatch_rejected(self):
        stream = MutationStream(base_vertices=100)
        with pytest.raises(StreamError, match="100 vertices"):
            stream.validate_for(50)


class TestJsonFormat:
    def stream(self):
        return MutationStream(
            batches=(
                MutationBatch((AddVertices(1), AddEdge(0, 5))),
                MutationBatch((RemoveEdge(0, 5), RemoveVertex(5))),
            ),
            base_vertices=5,
            seed=3,
        )

    def test_round_trip_preserves_stream(self):
        stream = self.stream()
        assert MutationStream.from_json(stream.to_json()) == stream

    def test_fingerprint_is_content_stable(self):
        assert self.stream().fingerprint() == self.stream().fingerprint()
        other = MutationStream(
            batches=(MutationBatch((AddEdge(0, 1),)),), base_vertices=5
        )
        assert other.fingerprint() != self.stream().fingerprint()

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "stream.json")
        self.stream().save(path)
        assert MutationStream.load(path) == self.stream()

    def test_unsupported_version_rejected(self):
        payload = self.stream().to_jsonable()
        payload["format_version"] = STREAM_FORMAT_VERSION + 1
        with pytest.raises(StreamFormatError, match="not supported"):
            MutationStream.from_jsonable(payload)

    def test_unknown_op_rejected(self):
        payload = self.stream().to_jsonable()
        payload["batches"][0][0] = {"op": "teleport_vertex", "vertex": 1}
        with pytest.raises(StreamFormatError, match="teleport_vertex"):
            MutationStream.from_jsonable(payload)

    def test_malformed_op_fields_rejected(self):
        payload = self.stream().to_jsonable()
        payload["batches"][0][0] = {"op": "add_edge", "src": 1}
        with pytest.raises(StreamFormatError, match="malformed add_edge"):
            MutationStream.from_jsonable(payload)

    def test_non_object_payload_rejected(self):
        with pytest.raises(StreamFormatError, match="object"):
            MutationStream.from_json(json.dumps([1, 2]))

    def test_invalid_json_rejected(self):
        with pytest.raises(StreamFormatError, match="malformed"):
            MutationStream.from_json("{nope")


class TestReplay:
    def test_replay_chains_liveness(self, tiny_graph):
        stream = MutationStream(
            batches=(
                MutationBatch((RemoveVertex(0),)),
                MutationBatch((ReviveVertex(0), AddEdge(0, 2))),
            )
        )
        results = list(stream.replay(tiny_graph))
        assert len(results) == 2
        assert not results[0].live[0]
        assert results[1].live[0]
        assert (0, 2) in edge_multiset(results[1].graph)

    def test_describe_lists_every_op(self):
        stream = MutationStream(
            batches=(
                MutationBatch((AddVertices(2), AddEdge(1, 2))),
                MutationBatch((RemoveEdge(1, 2),)),
            )
        )
        rows = list(stream.describe())
        assert len(rows) == stream.num_ops
        assert rows[0] == (0, "add_vertices", "+2 vertices")
        assert rows[2] == (1, "remove_edge", "1 -> 2")
