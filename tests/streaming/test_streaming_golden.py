"""Streaming golden regressions (byte-compared fixtures).

Two contracts are pinned:

* a **zero-mutation** stream degenerates to the ordinary engine run —
  its epoch-0 trace must be byte-identical to the static golden traces
  under ``tests/golden/``;
* the full golden streaming run (graph + cluster + partitioner + stream
  recipe from :mod:`repro.testing`) reproduces its checked-in
  ``streaming_<app>.trace.json`` fixture byte-for-byte.

Regenerate after *intentional* semantic changes with
``scripts/regen_streaming_golden.py`` and say so in the commit message.
"""

import json
import pathlib

import pytest

from repro.streaming import MutationStream, StreamingSystem
from repro.testing import (
    GOLDEN_APPS,
    GOLDEN_PARTITIONER,
    GOLDEN_PARTITIONER_SEED,
    GOLDEN_STREAM_HALO,
    GOLDEN_WEIGHTS,
    golden_cluster,
    golden_graph,
    golden_streaming_result,
    golden_trace,
)
from repro.apps.registry import make_app
from repro.partition import make_partitioner

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"


@pytest.fixture(scope="module")
def graph():
    return golden_graph()


class TestZeroMutationIdentity:
    @pytest.mark.parametrize("app_name", GOLDEN_APPS)
    def test_epoch0_trace_matches_static_golden(self, graph, app_name):
        system = StreamingSystem(golden_cluster(), halo=GOLDEN_STREAM_HALO)
        result = system.run(
            make_app(app_name),
            graph,
            MutationStream(),
            make_partitioner(GOLDEN_PARTITIONER, seed=GOLDEN_PARTITIONER_SEED),
            weights=GOLDEN_WEIGHTS,
        )
        assert result.num_epochs == 1
        fixture = (GOLDEN_DIR / f"{app_name}.trace.json").read_text()
        assert result.epochs[0].trace.canonical_json() + "\n" == fixture

    def test_zero_mutation_totals_are_static_run(self, graph):
        system = StreamingSystem(golden_cluster(), halo=GOLDEN_STREAM_HALO)
        result = system.run(
            make_app("pagerank"),
            graph,
            MutationStream(),
            make_partitioner(GOLDEN_PARTITIONER, seed=GOLDEN_PARTITIONER_SEED),
            weights=GOLDEN_WEIGHTS,
        )
        assert result.total_reassigned_edges == 0
        assert result.total_moved_edges == 0
        assert result.total_runtime_seconds == pytest.approx(
            result.epochs[0].report.runtime_seconds
        )


class TestStreamingGoldenFixtures:
    @pytest.mark.parametrize("app_name", GOLDEN_APPS)
    def test_streaming_trace_matches_fixture(self, graph, app_name):
        result = golden_streaming_result(app_name, graph=graph)
        fixture = (
            GOLDEN_DIR / f"streaming_{app_name}.trace.json"
        ).read_text()
        assert result.trace_json() + "\n" == fixture

    def test_fixture_is_wellformed_versioned_json(self):
        doc = json.loads(
            (GOLDEN_DIR / "streaming_pagerank.trace.json").read_text()
        )
        assert doc["format_version"] == 1
        assert len(doc["epochs"]) == doc["epochs"][-1]["epoch"] + 1
        for epoch in doc["epochs"][1:]:
            assert "reassigned_edges" in epoch
            assert "moved_edges" in epoch
