"""Mid-stream shard failover: the fault-tolerant streaming acceptance test.

A 3-shard federation runs the golden streaming workload with a shared
checkpoint custody.  A seeded shard crash lands mid-way through the
stream's occupancy window; the federation must seal custody at the crash
instant, fail the stream over in ring order, journal the
``checkpoint:<cursor>`` / ``resumed:<cursor>`` pair proving exactly-once
batch application, and complete with a final trace byte-identical to the
undisturbed run — pinned to ``tests/golden/federated_stream_pagerank
.trace.json`` (regenerate with ``scripts/regen_streaming_golden.py``).
"""

import json
import pathlib

import pytest

from repro.faults import ShardCrash, ShardFaultSchedule
from repro.faults.checkpoint import CheckpointPolicy
from repro.federation import FederationService
from repro.kernels.backend import use_backend
from repro.streaming import CheckpointCustody
from repro.testing import (
    GOLDEN_FED_SHARDS,
    GOLDEN_FED_STREAM_JOB,
    GOLDEN_STREAM_BATCHES,
    golden_federated_stream_workload,
    golden_federation_clusters,
)

BACKENDS = ("scalar", "vectorized")
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"
FIXTURE = GOLDEN_DIR / "federated_stream_pagerank.trace.json"


def _service():
    return FederationService(
        golden_federation_clusters(),
        custody=CheckpointCustody(),
        stream_checkpoint=CheckpointPolicy(interval=1),
    )


def _run(shard_faults=None):
    service = _service()
    result = service.run_workload(
        golden_federated_stream_workload(), shard_faults=shard_faults
    )
    return service, result


def _stream_trace(service):
    """The stream job's trace from whichever shard completed it."""
    traces = [
        shard.service.stream_traces[GOLDEN_FED_STREAM_JOB]
        for shard in service.shards
        if GOLDEN_FED_STREAM_JOB in shard.service.stream_traces
    ]
    assert traces, "no shard holds the stream trace"
    return traces[-1]


@pytest.fixture(scope="module")
def fault_free():
    return _run()


@pytest.fixture(scope="module")
def crash_schedule(fault_free):
    """A shard crash dead-centre in the stream's occupancy window."""
    _, result = fault_free
    record = next(
        r for r in result.records if r.job_id == GOLDEN_FED_STREAM_JOB
    )
    owner = dict(result.placements)[GOLDEN_FED_STREAM_JOB]
    mid = record.start_s + 0.5 * (record.end_s - record.start_s)
    return owner, ShardFaultSchedule(
        crashes=(ShardCrash(time_s=mid, shard=owner, downtime_s=5.0),)
    )


@pytest.fixture(scope="module")
def disturbed(crash_schedule):
    owner, faults = crash_schedule
    service, result = _run(shard_faults=faults)
    return owner, service, result


class TestFaultFreeBaseline:
    def test_matches_golden_fixture(self, fault_free):
        service, result = fault_free
        assert _stream_trace(service) + "\n" == FIXTURE.read_text()

    def test_all_jobs_complete(self, fault_free):
        _, result = fault_free
        assert all(r.status == "completed" for r in result.records)
        assert len(result.records) == 3


class TestMidStreamFailover:
    def test_crash_and_failover_happened(self, disturbed):
        _, _, result = disturbed
        assert result.shard_crashes == 1
        assert result.failovers >= 1

    def test_stream_completes_exactly_once(self, disturbed):
        _, _, result = disturbed
        records = [
            r for r in result.records if r.job_id == GOLDEN_FED_STREAM_JOB
        ]
        assert len(records) == 1
        assert records[0].status == "completed"

    def test_journal_proves_exactly_once_batches(self, disturbed):
        owner, service, _ = disturbed
        crashed = service.shards[owner].journal
        sealed = [
            e for e in crashed.entries if e.kind.startswith("checkpoint:")
        ]
        assert len(sealed) == 1
        cursor = int(sealed[0].kind.split(":", 1)[1])
        assert 0 <= cursor <= GOLDEN_STREAM_BATCHES
        assert sealed[0].job_id == GOLDEN_FED_STREAM_JOB
        assert any(
            e.kind == "failover_out"
            and e.job_id == GOLDEN_FED_STREAM_JOB
            for e in crashed.entries
        )
        resumed = [
            e
            for shard in service.shards
            if shard.shard_id != owner
            for e in shard.journal.entries
            if e.kind.startswith("resumed:")
        ]
        assert len(resumed) == 1
        assert resumed[0].job_id == GOLDEN_FED_STREAM_JOB
        # The adopting shard continued from exactly the sealed cursor:
        # batches 0..cursor-1 ran before the crash, cursor.. after it.
        assert int(resumed[0].kind.split(":", 1)[1]) == cursor

    def test_federation_event_announces_the_resume(self, disturbed):
        _, _, result = disturbed
        resumes = [e for e in result.events if e.kind == "stream_resume"]
        assert len(resumes) == 1
        assert resumes[0].job_id == GOLDEN_FED_STREAM_JOB

    def test_recovered_trace_is_byte_identical_to_golden(self, disturbed):
        _, service, _ = disturbed
        trace = _stream_trace(service)
        assert trace + "\n" == FIXTURE.read_text()
        # Every epoch exactly once: initial placement + one per batch.
        assert len(json.loads(trace)["epochs"]) == GOLDEN_STREAM_BATCHES + 1

    def test_two_disturbed_replays_are_byte_identical(self, crash_schedule):
        _, faults = crash_schedule
        first_service, first = _run(shard_faults=faults)
        second_service, second = _run(shard_faults=faults)
        assert first.trace_json() == second.trace_json()
        assert _stream_trace(first_service) == _stream_trace(second_service)


class TestBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failover_is_byte_identical_on_both_backends(
        self, crash_schedule, backend
    ):
        _, faults = crash_schedule
        with use_backend(backend):
            service, result = _run(shard_faults=faults)
        assert result.shard_crashes == 1
        assert _stream_trace(service) + "\n" == FIXTURE.read_text()


class TestWithoutCustody:
    def test_failover_restarts_from_scratch_but_still_completes(
        self, crash_schedule
    ):
        owner, faults = crash_schedule
        service = FederationService(golden_federation_clusters())
        result = service.run_workload(
            golden_federated_stream_workload(), shard_faults=faults
        )
        records = [
            r for r in result.records if r.job_id == GOLDEN_FED_STREAM_JOB
        ]
        assert len(records) == 1
        assert records[0].status == "completed"
        for shard in service.shards:
            assert not any(
                e.kind.startswith(("checkpoint:", "resumed:"))
                for e in shard.journal.entries
            )

    def test_shards_share_one_custody(self):
        custody = CheckpointCustody()
        service = FederationService(
            golden_federation_clusters(), custody=custody
        )
        assert service.num_shards == GOLDEN_FED_SHARDS
        for shard in service.shards:
            assert shard.service.checkpoints is custody
