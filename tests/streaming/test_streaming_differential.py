"""Differential churn harness: incremental repair vs replay-from-scratch.

The incremental partitioner's contract is that its per-batch assignment
is a pure function of (base strategy config, halo, weight history, batch
history).  The harness pins that three ways:

* **Replay determinism** — for every strategy and both kernel backends,
  a fresh :class:`IncrementalPartitioner` replayed from scratch up to
  batch *k* reproduces the continuous run's assignment at batch *k*
  byte-for-byte;
* **Quality** — the repaired partition's weighted imbalance stays within
  a pinned factor of a full per-batch re-partition's;
* **Trace identity** — full streaming runs (4 apps x 5 strategies) are
  byte-identical across two executions, and across the scalar and
  vectorized kernel backends.
"""

import numpy as np
import pytest

from repro.apps.registry import DEFAULT_APPS, make_app
from repro.kernels.backend import use_backend
from repro.partition import make_partitioner
from repro.partition.metrics import weighted_imbalance
from repro.partition.oblivious import ObliviousPartitioner
from repro.powerlaw.generator import generate_power_law_graph
from repro.streaming import (
    IncrementalPartitioner,
    StreamingSystem,
    apply_batch,
    generate_stream,
)
from repro.experiments.common import CASE1_PARTITIONERS, case1_cluster

#: Incremental repair may be this much worse than a full re-partition
#: (measured headroom is ~1.06x on this harness; the pin catches drift
#: without flaking on strategy tweaks).
IMBALANCE_PIN = 1.5

NUM_MACHINES = 4
BACKENDS = ("scalar", "vectorized")


@pytest.fixture(scope="module")
def base_graph():
    return generate_power_law_graph(num_vertices=600, alpha=2.1, seed=11)


@pytest.fixture(scope="module")
def churn_stream(base_graph):
    return generate_stream(
        base_graph, pattern="churn", num_batches=4, ops_per_batch=10, seed=3
    )


def strategy_instances(seed=5):
    """The five named strategies plus a deliberately order-sensitive
    small-chunk Oblivious (the default chunk covers small graphs whole,
    which would hide history effects from the differential check)."""
    instances = [make_partitioner(name, seed=seed) for name in CASE1_PARTITIONERS]
    instances.append(ObliviousPartitioner(seed=seed, chunk_size=64))
    return instances


def continuous_assignments(partitioner, graph, stream, halo=1):
    """One continuous incremental run; assignment bytes after each batch."""
    inc = IncrementalPartitioner(partitioner, halo=halo)
    inc.start(graph, NUM_MACHINES)
    out = []
    current, live = graph, None
    for batch in stream.batches:
        delta = apply_batch(current, batch, live=live)
        update = inc.apply(delta)
        out.append(update.result.assignment.tobytes())
        current, live = delta.graph, delta.live
    return out


class TestReplayDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replay_from_scratch_is_byte_identical(
        self, base_graph, churn_stream, backend
    ):
        for strategy in strategy_instances():
            with use_backend(backend):
                continuous = continuous_assignments(
                    strategy, base_graph, churn_stream
                )
                for upto in range(1, churn_stream.num_batches + 1):
                    prefix = type(churn_stream)(
                        batches=churn_stream.batches[:upto]
                    )
                    replayed = continuous_assignments(
                        strategy, base_graph, prefix
                    )
                    assert replayed[-1] == continuous[upto - 1], (
                        f"{strategy.name}: batch {upto - 1} diverged on "
                        f"replay ({backend})"
                    )

    def test_backends_agree_on_assignments(self, base_graph, churn_stream):
        for strategy in strategy_instances():
            per_backend = []
            for backend in BACKENDS:
                with use_backend(backend):
                    per_backend.append(
                        continuous_assignments(strategy, base_graph, churn_stream)
                    )
            assert per_backend[0] == per_backend[1], strategy.name


class TestImbalancePin:
    @pytest.mark.parametrize("algorithm", CASE1_PARTITIONERS)
    def test_incremental_within_pinned_factor_of_full(
        self, base_graph, churn_stream, algorithm
    ):
        inc = IncrementalPartitioner(make_partitioner(algorithm, seed=5), halo=1)
        inc.start(base_graph, NUM_MACHINES)
        full = make_partitioner(algorithm, seed=5)
        current, live = base_graph, None
        for batch in churn_stream.batches:
            delta = apply_batch(current, batch, live=live)
            update = inc.apply(delta)
            full_result = full.partition(delta.graph, NUM_MACHINES)
            assert update.imbalance <= IMBALANCE_PIN * weighted_imbalance(
                full_result
            ), f"{algorithm}: incremental imbalance drifted past the pin"
            current, live = delta.graph, delta.live


class TestStreamingTraceIdentity:
    @pytest.mark.parametrize("app_name", DEFAULT_APPS)
    @pytest.mark.parametrize("algorithm", CASE1_PARTITIONERS)
    def test_two_runs_byte_identical(
        self, base_graph, churn_stream, app_name, algorithm
    ):
        cluster = case1_cluster()

        def one_run():
            system = StreamingSystem(cluster, halo=1)
            return system.run(
                make_app(app_name),
                base_graph,
                churn_stream,
                make_partitioner(algorithm, seed=5),
            ).trace_json()

        assert one_run() == one_run()

    @pytest.mark.parametrize("algorithm", CASE1_PARTITIONERS)
    def test_backends_byte_identical(self, base_graph, churn_stream, algorithm):
        cluster = case1_cluster()
        traces = []
        for backend in BACKENDS:
            with use_backend(backend):
                system = StreamingSystem(cluster, halo=1)
                traces.append(
                    system.run(
                        make_app("pagerank"),
                        base_graph,
                        churn_stream,
                        make_partitioner(algorithm, seed=5),
                    ).trace_json()
                )
        assert traces[0] == traces[1]


class TestIncrementalAccounting:
    def test_carried_plus_reassigned_covers_every_edge(
        self, base_graph, churn_stream
    ):
        inc = IncrementalPartitioner(make_partitioner("hybrid", seed=5), halo=1)
        inc.start(base_graph, NUM_MACHINES)
        current, live = base_graph, None
        for batch in churn_stream.batches:
            delta = apply_batch(current, batch, live=live)
            update = inc.apply(delta)
            assert (
                update.carried_edges + update.reassigned_edges
                == delta.graph.num_edges
            )
            assert update.moved_edges <= update.reassigned_edges
            current, live = delta.graph, delta.live

    def test_halo_zero_reassigns_fewer_edges(self, base_graph, churn_stream):
        totals = {}
        for halo in (0, 2):
            inc = IncrementalPartitioner(
                make_partitioner("hybrid", seed=5), halo=halo
            )
            inc.start(base_graph, NUM_MACHINES)
            total = 0
            current, live = base_graph, None
            for batch in churn_stream.batches:
                delta = apply_batch(current, batch, live=live)
                total += inc.apply(delta).reassigned_edges
                current, live = delta.graph, delta.live
            totals[halo] = total
        assert totals[0] < totals[2]

    def test_carried_edges_keep_their_machine(self, base_graph, churn_stream):
        # halo=0: the affected region is exactly the touched set, so the
        # carried mask is reconstructible here without re-running the BFS.
        inc = IncrementalPartitioner(make_partitioner("ginger", seed=5), halo=0)
        prev = inc.start(base_graph, NUM_MACHINES)
        delta = apply_batch(base_graph, churn_stream.batches[0])
        update = inc.apply(delta)
        src, dst = delta.graph.edges()
        touched = np.zeros(delta.graph.num_vertices, dtype=bool)
        touched[list(delta.touched)] = True
        carried = (
            (delta.edge_origin >= 0) & ~touched[src] & ~touched[dst]
        )
        origin = delta.edge_origin[carried]
        np.testing.assert_array_equal(
            update.result.assignment[carried], prev.assignment[origin]
        )
