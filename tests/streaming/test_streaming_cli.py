"""CLI exit-path tests for `repro stream` and streaming run flags."""

import json

import pytest

from repro.cli import main
from repro.streaming import MutationStream

CLUSTER = "m4.2xlarge,c4.2xlarge"


@pytest.fixture
def graph_file(tmp_path):
    path = str(tmp_path / "g.npz")
    assert main(["generate", "--vertices", "300", "--seed", "5",
                 "--output", path]) == 0
    return path


@pytest.fixture
def stream_file(tmp_path, graph_file):
    path = str(tmp_path / "stream.json")
    assert main(["stream", "--graph-file", graph_file, "--batches", "3",
                 "--ops", "6", "--seed", "11", "--output", path]) == 0
    return path


class TestStreamCommand:
    def test_generate_writes_loadable_stream(
        self, tmp_path, graph_file, capsys
    ):
        path = str(tmp_path / "fresh.json")
        capsys.readouterr()
        assert main(["stream", "--graph-file", graph_file, "--batches", "3",
                     "--ops", "6", "--seed", "11", "--output", path]) == 0
        out = capsys.readouterr().out
        assert "3 batch(es)" in out
        assert "fingerprint" in out
        stream = MutationStream.load(path)
        assert stream.num_batches == 3
        assert stream.base_vertices == 300

    def test_same_seed_same_file(self, tmp_path, graph_file):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        for path in (a, b):
            assert main(["stream", "--graph-file", graph_file,
                         "--seed", "9", "--output", path]) == 0
        with open(a, encoding="utf-8") as fa, open(b, encoding="utf-8") as fb:
            assert fa.read() == fb.read()

    def test_describe_mode_prints_table(self, stream_file, capsys):
        capsys.readouterr()
        assert main(["stream", "--input", stream_file]) == 0
        out = capsys.readouterr().out
        assert "300 base vertices" in out
        assert "fingerprint" in out

    def test_describe_conflicts_with_generate(self, stream_file, graph_file):
        assert main(["stream", "--input", stream_file,
                     "--graph-file", graph_file]) == 2

    def test_requires_output_or_input(self, graph_file):
        assert main(["stream", "--graph-file", graph_file]) == 2

    def test_malformed_stream_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format_version": 99, "batches": []}))
        assert main(["stream", "--input", str(bad)]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_missing_stream_file_exits_2(self, tmp_path):
        assert main(["stream", "--input", str(tmp_path / "nope.json")]) == 2


class TestProcessMutations:
    def test_streaming_run_prints_epoch_table(
        self, graph_file, stream_file, capsys
    ):
        capsys.readouterr()
        code = main(["process", "--cluster", CLUSTER, "--app", "pagerank",
                     "--graph-file", graph_file,
                     "--mutations", stream_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming run: pagerank" in out
        assert "reassigned edges" in out

    def test_stream_out_is_reproducible(
        self, tmp_path, graph_file, stream_file
    ):
        t1 = str(tmp_path / "t1.json")
        t2 = str(tmp_path / "t2.json")
        for path in (t1, t2):
            assert main(["process", "--cluster", CLUSTER,
                         "--app", "pagerank", "--graph-file", graph_file,
                         "--mutations", stream_file,
                         "--stream-out", path]) == 0
        with open(t1, encoding="utf-8") as fa, open(t2, encoding="utf-8") as fb:
            assert fa.read() == fb.read()

    def test_crash_schedule_recovers_byte_identically(
        self, tmp_path, graph_file, stream_file, capsys
    ):
        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps({
            "seed": 0,
            "crashes": [{"superstep": 2, "machine": 0, "repeats": 1}],
            "slowdowns": [],
            "network_faults": [],
        }))
        plain = str(tmp_path / "plain.json")
        recovered = str(tmp_path / "recovered.json")
        assert main(["process", "--cluster", CLUSTER, "--app", "pagerank",
                     "--graph-file", graph_file, "--mutations", stream_file,
                     "--stream-out", plain]) == 0
        capsys.readouterr()
        code = main(["process", "--cluster", CLUSTER, "--app", "pagerank",
                     "--graph-file", graph_file, "--mutations", stream_file,
                     "--fault-schedule", str(faults),
                     "--checkpoint-every", "1",
                     "--stream-out", recovered])
        assert code == 0
        assert "resilience       : 1 crash(es)" in capsys.readouterr().out
        with open(plain, encoding="utf-8") as fa, \
                open(recovered, encoding="utf-8") as fb:
            assert fa.read() == fb.read()

    def test_slowdown_schedule_with_mutations_exits_2(
        self, tmp_path, graph_file, stream_file, capsys
    ):
        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps({
            "seed": 0,
            "crashes": [],
            "slowdowns": [{"superstep": 0, "machine": 0, "factor": 2.0,
                           "duration": 1}],
            "network_faults": [],
        }))
        code = main(["process", "--cluster", CLUSTER, "--app", "pagerank",
                     "--graph-file", graph_file, "--mutations", stream_file,
                     "--fault-schedule", str(faults)])
        assert code == 2
        assert "crash faults only" in capsys.readouterr().err

    def test_missing_fault_schedule_exits_2(
        self, graph_file, stream_file, capsys
    ):
        code = main(["process", "--cluster", CLUSTER, "--app", "pagerank",
                     "--graph-file", graph_file, "--mutations", stream_file,
                     "--fault-schedule", "whatever.json"])
        assert code == 2
        assert "cannot read fault schedule" in capsys.readouterr().err

    def test_wrong_base_graph_exits_2(self, tmp_path, stream_file, capsys):
        other = str(tmp_path / "other.npz")
        assert main(["generate", "--vertices", "50", "--seed", "1",
                     "--output", other]) == 0
        capsys.readouterr()
        code = main(["process", "--cluster", CLUSTER, "--app", "pagerank",
                     "--graph-file", other, "--mutations", stream_file])
        assert code == 2
        assert "300 vertices" in capsys.readouterr().err

    def test_malformed_mutations_file_exits_2(self, tmp_path, graph_file):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["process", "--cluster", CLUSTER, "--app", "pagerank",
                     "--graph-file", graph_file,
                     "--mutations", str(bad)]) == 2

    def test_obs_artifacts_include_streaming_trace(
        self, tmp_path, graph_file, stream_file
    ):
        obs_dir = str(tmp_path / "obsrun")
        assert main(["process", "--cluster", CLUSTER, "--app", "pagerank",
                     "--graph-file", graph_file, "--mutations", stream_file,
                     "--obs-dir", obs_dir]) == 0
        with open(f"{obs_dir}/trace.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["app"] == "pagerank"
        assert len(doc["epochs"]) == 4


class TestExperimentMutations:
    def test_churn_accepts_stream_file(self, tmp_path, capsys):
        # The churn experiment's base graph is the 1200-vertex recipe.
        g = str(tmp_path / "g.npz")
        assert main(["generate", "--vertices", "1200", "--alpha", "2.1",
                     "--seed", "1234", "--output", g]) == 0
        s = str(tmp_path / "s.json")
        assert main(["stream", "--graph-file", g, "--batches", "2",
                     "--ops", "4", "--seed", "2", "--output", s]) == 0
        capsys.readouterr()
        assert main(["experiment", "churn", "--mutations", s]) == 0
        out = capsys.readouterr().out
        assert "work ratio" in out

    def test_mutations_rejected_for_other_experiments(self, tmp_path, capsys):
        s = tmp_path / "s.json"
        s.write_text(json.dumps({"format_version": 1, "batches": []}))
        assert main(["experiment", "table1", "--mutations", str(s)]) == 2
        assert "only applies" in capsys.readouterr().err

    def test_churn_runs_without_stream(self, capsys):
        assert main(["experiment", "churn"]) == 0
        out = capsys.readouterr().out
        assert "work ratio" in out
