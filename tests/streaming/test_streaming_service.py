"""Streaming jobs through the service: format v3 gate, admission, pricing."""

import json

import pytest

from repro.cli import main
from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.errors import WorkloadFormatError
from repro.powerlaw.generator import generate_power_law_graph
from repro.service import (
    STATUS_COMPLETED,
    STATUS_REJECTED,
    GraphSpec,
    JobRequest,
    JobService,
    Workload,
)
from repro.service.request import (
    SUPPORTED_FORMAT_VERSIONS,
    WORKLOAD_FORMAT_VERSION,
)
from repro.streaming import (
    AddEdge,
    MutationBatch,
    MutationStream,
    RemoveVertex,
    generate_stream,
)

VERTICES = 300


@pytest.fixture
def pair() -> Cluster:
    return Cluster(
        [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
        perf=PerformanceModel(model_scale=0.01),
    )


def stream_for_base(seed=3):
    graph = generate_power_law_graph(
        num_vertices=VERTICES, alpha=2.1, seed=0
    )
    return generate_stream(
        graph, pattern="churn", num_batches=3, ops_per_batch=6, seed=seed
    )


def streaming_job(job_id="s0", seed=3, **kwargs):
    spec = GraphSpec(
        vertices=VERTICES, alpha=2.1, seed=0, mutations=stream_for_base(seed)
    )
    return JobRequest(job_id=job_id, app="pagerank", graph=spec, **kwargs)


class TestFormatVersionGate:
    def test_version_4_is_current_and_supported(self):
        assert WORKLOAD_FORMAT_VERSION == 4
        assert 3 in SUPPORTED_FORMAT_VERSIONS
        assert 4 in SUPPORTED_FORMAT_VERSIONS

    def test_mutations_require_version_3(self):
        payload = json.loads(Workload(jobs=(streaming_job(),)).to_json())
        payload["format_version"] = 2
        with pytest.raises(
            WorkloadFormatError,
            match=r"jobs\[0\]: graph 'mutations' requires format_version >= 3",
        ):
            Workload.from_json(json.dumps(payload))

    def test_v2_files_without_mutations_still_load(self):
        payload = json.loads(
            Workload(
                jobs=(
                    JobRequest(
                        job_id="plain",
                        app="pagerank",
                        graph=GraphSpec(vertices=50),
                    ),
                )
            ).to_json()
        )
        payload["format_version"] = 2
        assert Workload.from_json(json.dumps(payload)).num_jobs == 1

    def test_round_trip_preserves_stream(self):
        workload = Workload(jobs=(streaming_job(),))
        loaded = Workload.from_json(workload.to_json())
        assert loaded.jobs[0].graph.mutations == stream_for_base()


class TestSpecValidation:
    def test_mutations_and_faults_are_exclusive(self):
        from repro.service import FaultSpec

        with pytest.raises(WorkloadFormatError, match="fault"):
            streaming_job(fault_rates=FaultSpec(crash_rate=0.5, seed=1))

    def test_unknown_vertex_rejected_at_construction(self):
        bad = MutationStream(
            batches=(MutationBatch((RemoveVertex(VERTICES + 7),)),)
        )
        with pytest.raises(
            WorkloadFormatError, match="invalid mutation stream"
        ):
            GraphSpec(vertices=VERTICES, mutations=bad)

    def test_unknown_vertex_error_names_job_index_on_load(self):
        payload = json.loads(Workload(jobs=(streaming_job(),)).to_json())
        payload["jobs"][0]["graph"]["mutations"]["batches"] = [
            [{"op": "add_edge", "src": 0, "dst": VERTICES + 9}]
        ]
        with pytest.raises(WorkloadFormatError, match=r"jobs\[0\]"):
            Workload.from_json(json.dumps(payload))

    def test_key_includes_stream_fingerprint(self):
        with_stream = GraphSpec(
            vertices=VERTICES, mutations=stream_for_base(seed=3)
        )
        other_stream = GraphSpec(
            vertices=VERTICES, mutations=stream_for_base(seed=4)
        )
        plain = GraphSpec(vertices=VERTICES)
        assert with_stream.key() != plain.key()
        assert with_stream.key() != other_stream.key()
        assert with_stream.key() == GraphSpec(
            vertices=VERTICES, mutations=stream_for_base(seed=3)
        ).key()


class TestStreamingJobs:
    def test_streaming_job_completes_fault_free(self, pair):
        result = JobService(pair).run_workload(
            Workload(jobs=(streaming_job(),))
        )
        record = result.records[0]
        assert record.status == STATUS_COMPLETED
        assert record.attempts == 1
        assert record.charged_seconds > 0.0

    def test_two_runs_trace_byte_identical(self, pair):
        workload = Workload(jobs=(streaming_job(), streaming_job("s1")))

        def one_run():
            return JobService(pair).run_workload(workload).trace_json()

        assert one_run() == one_run()

    def test_dataset_spec_with_bad_stream_rejected_at_admission(self, pair):
        # Dataset specs can't validate at construction (the base size is
        # only known once the graph materialises), so the reject happens
        # at the admission gate and lands in the record, not an exception.
        bad = MutationStream(
            batches=(MutationBatch((AddEdge(0, 10**6),)),)
        )
        spec = GraphSpec(dataset="wiki", scale=0.05, mutations=bad)
        job = JobRequest(job_id="d0", app="pagerank", graph=spec)
        result = JobService(pair).run_workload(Workload(jobs=(job,)))
        record = result.records[0]
        assert record.status == STATUS_REJECTED
        assert record.reason.startswith("jobs[0]: invalid mutation stream")

    def test_admission_reject_locates_the_job_index(self, pair):
        # The offending job is not first in the workload: the located
        # prefix must name its position, not just repeat the error.
        bad = MutationStream(
            batches=(MutationBatch((AddEdge(0, 10**6),)),)
        )
        jobs = (
            JobRequest(
                job_id="ok", app="pagerank", graph=GraphSpec(vertices=50)
            ),
            JobRequest(
                job_id="d1",
                app="pagerank",
                graph=GraphSpec(dataset="wiki", scale=0.05, mutations=bad),
                submit_s=0.1,
            ),
        )
        result = JobService(pair).run_workload(Workload(jobs=jobs))
        by_id = {r.job_id: r for r in result.records}
        assert by_id["d1"].status == STATUS_REJECTED
        assert by_id["d1"].reason.startswith(
            "jobs[1]: invalid mutation stream"
        )

    def test_federation_admission_reject_locates_the_job_index(self):
        # Same contract through the federated admission path: the shard
        # that rejects must still name the workload position.
        from repro.cluster.perfmodel import PerformanceModel
        from repro.federation import FederationService

        bad = MutationStream(
            batches=(MutationBatch((AddEdge(0, 10**6),)),)
        )
        jobs = (
            JobRequest(
                job_id="ok", app="pagerank", graph=GraphSpec(vertices=50)
            ),
            JobRequest(
                job_id="d1",
                app="pagerank",
                graph=GraphSpec(dataset="wiki", scale=0.05, mutations=bad),
                submit_s=0.1,
            ),
        )
        clusters = [
            Cluster(
                [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
                perf=PerformanceModel(model_scale=0.01),
            )
            for _ in range(2)
        ]
        result = FederationService(clusters).run_workload(
            Workload(jobs=jobs)
        )
        by_id = {r.job_id: r for r in result.records}
        assert by_id["d1"].status == STATUS_REJECTED
        assert by_id["d1"].reason.startswith(
            "jobs[1]: invalid mutation stream"
        )

    def test_mixed_workload_prices_both_kinds(self, pair):
        plain = JobRequest(
            job_id="p0", app="pagerank", graph=GraphSpec(vertices=VERTICES)
        )
        result = JobService(pair).run_workload(
            Workload(jobs=(plain, streaming_job("s0", submit_s=0.5)))
        )
        assert [r.status for r in result.records] == [
            STATUS_COMPLETED,
            STATUS_COMPLETED,
        ]
        # The streaming job runs 4 epochs' worth of supersteps.
        by_id = {r.job_id: r for r in result.records}
        assert by_id["s0"].supersteps > by_id["p0"].supersteps


class TestServeCli:
    def test_serve_replays_streaming_workload(self, tmp_path, capsys):
        path = str(tmp_path / "wl.json")
        Workload(jobs=(streaming_job(),), seed=1).save(path)
        code = main(["serve", "--cluster", "m4.2xlarge,c4.2xlarge",
                     "--workload", path, "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs_submitted"] == 1
        assert summary["jobs_completed"] == 1
        assert summary["jobs_rejected"] == 0

    def test_serve_rejects_bad_stream_with_exit_2(self, tmp_path, capsys):
        payload = json.loads(Workload(jobs=(streaming_job(),)).to_json())
        payload["jobs"][0]["graph"]["mutations"]["batches"] = [
            [{"op": "remove_vertex", "vertex": VERTICES + 1}]
        ]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        code = main(["serve", "--cluster", "m4.2xlarge,c4.2xlarge",
                     "--workload", str(path)])
        assert code == 2
        assert "jobs[0]" in capsys.readouterr().err
