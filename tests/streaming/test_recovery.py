"""Unit tests for the fault-tolerant streaming runtime.

Covers the :mod:`repro.streaming.recovery` contracts in isolation:
checkpoint serialization and validation, custody seal semantics, the
crash/replay accounting of :class:`ResilientStreamingSystem`, and
mid-stream resume (byte-identical continuation).  The federated failover
path is exercised end-to-end in ``test_streaming_federation.py``.
"""

import dataclasses
import json

import pytest

from repro.apps.registry import make_app
from repro.errors import (
    RecoveryError,
    StreamCheckpointError,
    StreamError,
)
from repro.faults.checkpoint import CheckpointPolicy, RetryPolicy
from repro.faults.schedule import (
    CrashFault,
    FaultSchedule,
    SlowdownFault,
)
from repro.partition import make_partitioner
from repro.streaming import (
    CheckpointCustody,
    ResilientStreamingSystem,
    StreamCheckpoint,
    StreamingSystem,
    apply_batch,
    replay_consumed_batches,
)
from repro.testing import (
    GOLDEN_PARTITIONER,
    GOLDEN_PARTITIONER_SEED,
    GOLDEN_STREAM_HALO,
    GOLDEN_WEIGHTS,
    golden_cluster,
    golden_graph,
    golden_stream,
)

APP = "pagerank"


@pytest.fixture(scope="module")
def graph():
    return golden_graph()


@pytest.fixture(scope="module")
def stream(graph):
    return golden_stream(graph)


def _partitioner():
    return make_partitioner(GOLDEN_PARTITIONER, seed=GOLDEN_PARTITIONER_SEED)


def _plain_trace(graph, stream):
    system = StreamingSystem(golden_cluster(), halo=GOLDEN_STREAM_HALO)
    return system.run(
        make_app(APP), graph, stream, _partitioner(), weights=GOLDEN_WEIGHTS
    ).trace_json()


def _run(graph, stream, custody=None, job_id=None, resume_from=None, **kw):
    kw.setdefault("checkpoint", CheckpointPolicy(interval=1))
    system = ResilientStreamingSystem(
        golden_cluster(),
        halo=GOLDEN_STREAM_HALO,
        custody=custody,
        job_id=job_id,
        **kw,
    )
    return system.run_resilient(
        make_app(APP),
        graph,
        stream,
        _partitioner(),
        weights=GOLDEN_WEIGHTS,
        resume_from=resume_from,
    )


@pytest.fixture(scope="module")
def checkpoint(graph, stream) -> StreamCheckpoint:
    """A real mid-stream snapshot (cursor 2 of the golden stream)."""
    custody = CheckpointCustody()
    _run(graph, stream, custody=custody, job_id="unit")
    entries = custody._entries["unit"]
    # interval=1 snapshots after every epoch: cursors 0..num_batches.
    return entries[2][1]


class TestStreamCheckpoint:
    def test_canonical_json_round_trips_byte_identically(self, checkpoint):
        payload = json.loads(checkpoint.canonical_json())
        restored = StreamCheckpoint.from_jsonable(payload)
        assert restored.canonical_json() == checkpoint.canonical_json()
        assert restored.fingerprint() == checkpoint.fingerprint()

    def test_cursor_matches_epoch_record_count(self, checkpoint):
        assert checkpoint.batch_cursor == 2
        assert len(checkpoint.epoch_records) == 3

    def test_unknown_field_rejected(self, checkpoint):
        payload = json.loads(checkpoint.canonical_json())
        payload["surprise"] = 1
        with pytest.raises(StreamCheckpointError, match="surprise"):
            StreamCheckpoint.from_jsonable(payload)

    def test_future_format_version_rejected(self, checkpoint):
        payload = json.loads(checkpoint.canonical_json())
        payload["format_version"] = 99
        with pytest.raises(StreamCheckpointError, match="99"):
            StreamCheckpoint.from_jsonable(payload)

    def test_record_count_invariant_enforced(self, checkpoint):
        with pytest.raises(StreamCheckpointError, match="epoch records"):
            dataclasses.replace(checkpoint, batch_cursor=5)

    def test_checkpoint_key_names_identity(self, checkpoint):
        key = checkpoint.checkpoint_key("job-7")
        assert key.startswith("stream_checkpoint:v1:job=job-7:")
        assert f"cursor={checkpoint.batch_cursor}" in key
        assert checkpoint.graph_fingerprint in key
        assert checkpoint.stream_fingerprint in key


class TestReplayConsumedBatches:
    def test_matches_structural_apply(self, graph, stream):
        replayed, live = replay_consumed_batches(graph, stream, 2)
        current, expect_live = graph, None
        for batch in stream.batches[:2]:
            delta = apply_batch(current, batch, live=expect_live)
            current, expect_live = delta.graph, delta.live
        assert replayed.num_edges == current.num_edges
        assert (replayed.src == current.src).all()
        assert (replayed.dst == current.dst).all()

    def test_cursor_zero_is_the_base_graph(self, graph, stream):
        replayed, live = replay_consumed_batches(graph, stream, 0)
        assert replayed is graph
        assert live is None

    def test_cursor_beyond_stream_rejected(self, graph, stream):
        with pytest.raises(StreamCheckpointError, match="outside"):
            replay_consumed_batches(graph, stream, stream.num_batches + 1)


class TestCheckpointCustody:
    def test_latest_is_most_recent(self, checkpoint):
        custody = CheckpointCustody()
        earlier = dataclasses.replace(
            checkpoint,
            batch_cursor=1,
            epoch_records=checkpoint.epoch_records[:2],
        )
        custody.record("j", earlier, durable_at_s=1.0)
        custody.record("j", checkpoint, durable_at_s=2.0)
        assert custody.latest("j") is checkpoint
        assert custody.latest("other") is None

    def test_seal_drops_snapshots_past_the_cutoff(self, checkpoint):
        custody = CheckpointCustody()
        earlier = dataclasses.replace(
            checkpoint,
            batch_cursor=1,
            epoch_records=checkpoint.epoch_records[:2],
        )
        custody.record("j", earlier, durable_at_s=1.0)
        custody.record("j", checkpoint, durable_at_s=2.0)
        survivor = custody.seal("j", cutoff_s=1.5)
        assert survivor is earlier
        assert custody.latest("j") is earlier

    def test_sealed_survivor_stays_durable_for_later_crashes(
        self, checkpoint
    ):
        # The survivor is re-timed as already durable: a second crash at
        # an even earlier cutoff must not drop it.
        custody = CheckpointCustody()
        custody.record("j", checkpoint, durable_at_s=2.0)
        assert custody.seal("j", cutoff_s=3.0) is checkpoint
        assert custody.seal("j", cutoff_s=0.0) is checkpoint

    def test_seal_with_nothing_durable_clears_custody(self, checkpoint):
        custody = CheckpointCustody()
        custody.record("j", checkpoint, durable_at_s=2.0)
        assert custody.seal("j", cutoff_s=1.0) is None
        assert custody.latest("j") is None

    def test_clear_drops_the_job(self, checkpoint):
        custody = CheckpointCustody()
        custody.record("j", checkpoint, durable_at_s=1.0)
        custody.clear("j")
        assert custody.latest("j") is None

    def test_store_round_trip_is_byte_identical(self, tmp_path, checkpoint):
        from repro.store import SummaryStore

        path = str(tmp_path / "custody.db")
        SummaryStore.create(path).close()
        store = SummaryStore.open(path)
        try:
            custody = CheckpointCustody(store=store)
            custody.record("j", checkpoint, durable_at_s=1.0)
            fetched = custody.fetch(checkpoint.checkpoint_key("j"))
            assert fetched is not None
            assert fetched.canonical_json() == checkpoint.canonical_json()
            assert custody.fetch("stream_checkpoint:v1:job=missing") is None
        finally:
            store.close()


class TestResilientRun:
    def test_slowdown_schedules_rejected(self):
        schedule = FaultSchedule(
            slowdowns=(
                SlowdownFault(superstep=0, machine=0, factor=2.0),
            )
        )
        with pytest.raises(StreamError, match="crash faults only"):
            ResilientStreamingSystem(golden_cluster(), faults=schedule)

    def test_fault_free_run_bills_only_snapshots(self, graph, stream):
        outcome = _run(graph, stream)
        assert outcome.recovery.crashes == 0
        assert outcome.recovery.replayed_epochs == 0
        # interval=1: one snapshot per epoch (initial + one per batch).
        assert outcome.recovery.checkpoints_taken == stream.num_batches + 1
        assert outcome.recovery.checkpoint_seconds > 0.0
        assert outcome.recovery.overhead_seconds == pytest.approx(
            outcome.recovery.checkpoint_seconds
        )
        assert outcome.result.trace_json() == _plain_trace(graph, stream)

    def test_crash_bills_time_never_bytes(self, graph, stream):
        schedule = FaultSchedule(
            crashes=(CrashFault(superstep=2, machine=0),)
        )
        outcome = _run(
            graph,
            stream,
            faults=schedule,
            checkpoint=CheckpointPolicy(interval=2),
            retry=RetryPolicy(),
            seed=5,
        )
        recovery = outcome.recovery
        assert recovery.crashes == 1
        # interval=2 snapshots after epochs 1 and 3; the crash at epoch 2
        # replays only the destroyed epoch itself.
        assert recovery.replayed_epochs == 1
        assert recovery.lost_seconds > 0.0
        assert recovery.replay_seconds == 0.0
        assert recovery.restart_seconds == pytest.approx(
            CheckpointPolicy().restart_seconds
        )
        assert recovery.backoff_seconds > 0.0
        assert outcome.result.trace_json() == _plain_trace(graph, stream)

    def test_recovery_bill_is_deterministic(self, graph, stream):
        def bill():
            schedule = FaultSchedule(
                crashes=(CrashFault(superstep=1, machine=1),)
            )
            return _run(
                graph, stream, faults=schedule, seed=11
            ).recovery.to_jsonable()

        assert bill() == bill()

    def test_disabled_snapshots_replay_from_scratch(self, graph, stream):
        schedule = FaultSchedule(
            crashes=(CrashFault(superstep=2, machine=0),)
        )
        outcome = _run(
            graph,
            stream,
            faults=schedule,
            checkpoint=CheckpointPolicy(interval=0),
        )
        # No durable snapshot exists: epochs 0 and 1 replay plus the
        # destroyed epoch 2.
        assert outcome.recovery.checkpoints_taken == 0
        assert outcome.recovery.replayed_epochs == 3
        assert outcome.recovery.replay_seconds > 0.0
        assert outcome.result.trace_json() == _plain_trace(graph, stream)

    def test_exhausted_retry_budget_raises(self, graph, stream):
        schedule = FaultSchedule(
            crashes=(CrashFault(superstep=1, machine=0, repeats=3),)
        )
        with pytest.raises(RecoveryError, match="retry budget"):
            _run(
                graph,
                stream,
                faults=schedule,
                retry=RetryPolicy(max_retries=2),
            )

    def test_resume_continues_byte_identically(self, graph, stream):
        custody = CheckpointCustody()
        _run(
            graph,
            stream,
            custody=custody,
            job_id="r",
            checkpoint=CheckpointPolicy(interval=2),
        )
        snapshot = custody.seal("r", cutoff_s=float("inf"))
        assert snapshot is not None
        assert snapshot.batch_cursor == 3
        outcome = _run(graph, stream, resume_from=snapshot)
        assert outcome.recovery.resumed_from_batch == 3
        assert outcome.result.trace_json() == _plain_trace(graph, stream)

    def test_resume_rejects_identity_mismatch(self, graph, stream, checkpoint):
        wrong = dataclasses.replace(checkpoint, app="sssp")
        with pytest.raises(StreamCheckpointError, match="app mismatch"):
            _run(graph, stream, resume_from=wrong)

    def test_resume_rejects_monitor_state_without_monitor(
        self, graph, stream, checkpoint
    ):
        with_monitor = dataclasses.replace(checkpoint, monitor={})
        with pytest.raises(StreamCheckpointError, match="monitor"):
            _run(graph, stream, resume_from=with_monitor)
