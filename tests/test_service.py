"""Unit tests for repro.service.service (admission, deadlines, shedding).

Each test replays a small hand-built workload on the m4/c4 pair at a
tiny performance scale, so runs execute the real engine but finish in
milliseconds of wall time.
"""

import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.errors import ServiceError
from repro.faults.checkpoint import CheckpointPolicy, RetryPolicy
from repro.faults.schedule import CrashFault, FaultSchedule
from repro.service import (
    STATUS_COMPLETED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_FAILED,
    STATUS_REJECTED,
    GraphSpec,
    JobRequest,
    JobService,
    ServicePolicy,
    Workload,
)

GRAPH = GraphSpec(vertices=300, alpha=2.1, seed=0)


@pytest.fixture
def pair() -> Cluster:
    return Cluster(
        [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
        perf=PerformanceModel(model_scale=0.01),
    )


def job(job_id, submit_s=0.0, priority=0, **kwargs):
    return JobRequest(job_id=job_id, app="pagerank", graph=GRAPH,
                      submit_s=submit_s, priority=priority, **kwargs)


class TestPolicyValidation:
    def test_rejects_zero_queue_depth(self):
        with pytest.raises(ServiceError, match="max_queue_depth"):
            ServicePolicy(max_queue_depth=0)

    def test_rejects_non_positive_projected_wait(self):
        with pytest.raises(ServiceError, match="max_projected_wait_s"):
            ServicePolicy(max_projected_wait_s=0.0)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ServiceError, match="max_attempts"):
            ServicePolicy(max_attempts=0)


class TestAdmission:
    def test_burst_overflowing_queue_is_rejected(self, pair):
        service = JobService(pair, policy=ServicePolicy(max_queue_depth=2))
        workload = Workload(
            jobs=tuple(job(f"j{i}") for i in range(6)), seed=0
        )
        result = service.run_workload(workload)
        counts = result.by_status()
        # The whole t=0 batch contends for the two queue slots before the
        # server picks up any work: two admitted, four rejected.
        assert counts[STATUS_REJECTED] == 4
        assert counts[STATUS_COMPLETED] == 2
        rejected = [r for r in result.records if r.status == STATUS_REJECTED]
        for r in rejected:
            assert r.start_s is None and r.end_s is None
            assert r.charged_seconds == 0.0
            assert r.charged_energy_joules == 0.0
            assert "queue full" in r.reason

    def test_projected_wait_bound_rejects(self, pair):
        service = JobService(
            pair,
            policy=ServicePolicy(max_queue_depth=50,
                                 max_projected_wait_s=1e-9),
        )
        workload = Workload(jobs=(job("a"), job("b"), job("c")), seed=0)
        result = service.run_workload(workload)
        # "a" goes straight to the idle server; the rest would wait.
        by_id = {r.job_id: r for r in result.records}
        assert by_id["a"].status == STATUS_COMPLETED
        assert by_id["b"].status == STATUS_REJECTED
        assert "projected wait" in by_id["b"].reason

    def test_invalid_fault_schedule_rejected_at_admission(self, pair):
        bad = FaultSchedule(crashes=(CrashFault(1, machine=9),), seed=0)
        workload = Workload(jobs=(job("a", faults=bad),), seed=0)
        result = JobService(pair).run_workload(workload)
        assert result.records[0].status == STATUS_REJECTED
        assert "invalid fault schedule" in result.records[0].reason

    def test_jobs_arriving_after_server_frees_are_admitted(self, pair):
        service = JobService(pair, policy=ServicePolicy(max_queue_depth=1))
        workload = Workload(
            jobs=(job("a"), job("b", submit_s=30.0)), seed=0
        )
        result = service.run_workload(workload)
        assert result.by_status()[STATUS_REJECTED] == 0


class TestDeadlines:
    def test_unmeetable_deadline_cancelled_before_running(self, pair):
        workload = Workload(jobs=(job("a", deadline_s=1e-9),), seed=0)
        record = JobService(pair).run_workload(workload).records[0]
        assert record.status == STATUS_DEADLINE_EXCEEDED
        assert record.attempts == 0
        assert record.charged_seconds == 0.0
        assert record.charged_energy_joules == 0.0
        assert record.end_s == record.start_s
        assert "projected finish" in record.reason

    def test_overrun_cancelled_at_deadline_and_prorated(self, pair):
        # The fault-free projection fits inside the deadline, but the
        # crash's recovery pause pushes the real finish far past it.
        crashing = FaultSchedule(crashes=(CrashFault(1, machine=0),), seed=0)
        workload = Workload(
            jobs=(job("a", deadline_s=0.5, faults=crashing),), seed=0
        )
        service = JobService(
            pair,
            checkpoint=CheckpointPolicy(interval=5, restart_seconds=2.0),
        )
        record = service.run_workload(workload).records[0]
        assert record.status == STATUS_DEADLINE_EXCEEDED
        assert record.attempts == 1
        assert record.end_s == pytest.approx(0.5)
        # Charged for the share actually consumed, not the full run.
        assert 0.0 < record.charged_seconds <= 0.5
        assert record.charged_energy_joules > 0.0

    def test_generous_deadline_completes(self, pair):
        workload = Workload(jobs=(job("a", deadline_s=1000.0),), seed=0)
        record = JobService(pair).run_workload(workload).records[0]
        assert record.status == STATUS_COMPLETED
        assert record.end_s < 1000.0


class TestRetriesAndFailure:
    def make_service(self, pair, max_attempts=2):
        return JobService(
            pair,
            policy=ServicePolicy(max_attempts=max_attempts),
            checkpoint=CheckpointPolicy(interval=5, restart_seconds=0.01),
            engine_retry=RetryPolicy(max_retries=1, backoff_base_s=0.001),
        )

    def test_unrecoverable_job_fails_after_all_attempts(self, pair):
        hopeless = FaultSchedule(
            crashes=(CrashFault(1, machine=0, repeats=10),), seed=0
        )
        workload = Workload(jobs=(job("a", faults=hopeless),), seed=0)
        record = self.make_service(pair).run_workload(workload).records[0]
        assert record.status == STATUS_FAILED
        assert record.attempts == 2
        assert record.charged_seconds == 0.0
        assert record.retries_backoff_s > 0.0

    def test_backoff_is_seeded_and_reproducible(self, pair):
        hopeless = FaultSchedule(
            crashes=(CrashFault(1, machine=0, repeats=10),), seed=0
        )
        workload = Workload(jobs=(job("a", faults=hopeless),), seed=0)
        first = self.make_service(pair).run_workload(workload).records[0]
        second = self.make_service(pair).run_workload(workload).records[0]
        assert first.retries_backoff_s == second.retries_backoff_s

    def test_recoverable_crash_completes_with_crash_count(self, pair):
        crashing = FaultSchedule(crashes=(CrashFault(1, machine=0),), seed=0)
        workload = Workload(jobs=(job("a", faults=crashing),), seed=0)
        record = self.make_service(pair).run_workload(workload).records[0]
        assert record.status == STATUS_COMPLETED
        assert record.crashes >= 1
        assert record.charged_seconds > 0.0


class TestShedding:
    def shed_service(self, pair):
        return JobService(
            pair,
            policy=ServicePolicy(
                max_queue_depth=8, shed_queue_depth=2,
                shed_priority_max=0, shed_iteration_cap=3,
            ),
        )

    def test_low_priority_jobs_run_degraded_under_backlog(self, pair):
        workload = Workload(
            jobs=tuple(job(f"j{i}") for i in range(4)), seed=0
        )
        result = self.shed_service(pair).run_workload(workload)
        by_id = {r.job_id: r for r in result.records}
        # j0 starts with 3 jobs queued behind it: shed.  The last job
        # starts with an empty backlog: full fidelity.
        assert by_id["j0"].degraded
        assert not by_id["j3"].degraded
        assert by_id["j0"].status == STATUS_COMPLETED
        assert 0 < by_id["j0"].supersteps < by_id["j3"].supersteps

    def test_high_priority_jobs_never_shed(self, pair):
        workload = Workload(
            jobs=tuple(job(f"j{i}", priority=3) for i in range(4)), seed=0
        )
        result = self.shed_service(pair).run_workload(workload)
        assert all(not r.degraded for r in result.records)

    def test_priority_orders_the_queue(self, pair):
        workload = Workload(
            jobs=(job("low-a"), job("hi", priority=9), job("low-b")),
            seed=0,
        )
        result = JobService(pair).run_workload(workload)
        by_id = {r.job_id: r for r in result.records}
        # All three arrive together, so the highest priority runs first.
        started = sorted(
            (r.start_s, r.job_id) for r in result.records
        )
        assert started[0][1] == "hi"
        assert by_id["hi"].status == STATUS_COMPLETED


class TestAccountingAndDeterminism:
    def test_summary_totals_match_records(self, pair):
        workload = Workload(
            jobs=tuple(job(f"j{i}") for i in range(5)), seed=0
        )
        result = JobService(
            pair, policy=ServicePolicy(max_queue_depth=2)
        ).run_workload(workload)
        summary = result.summary()
        assert summary["charged_seconds_total"] == sum(
            r.charged_seconds for r in result.records
        )
        assert summary["charged_energy_joules_total"] == sum(
            r.charged_energy_joules for r in result.records
        )
        assert summary["jobs_submitted"] == 5
        assert (
            summary["jobs_completed"] + summary["jobs_rejected"]
            + summary["jobs_deadline_exceeded"] + summary["jobs_failed"]
        ) == 5

    def test_records_sorted_by_submit_then_id(self, pair):
        workload = Workload(
            jobs=(job("z"), job("a", submit_s=0.0), job("m", submit_s=5.0)),
            seed=0,
        )
        result = JobService(pair).run_workload(workload)
        assert [r.job_id for r in result.records] == ["a", "z", "m"]

    def test_same_workload_same_trace(self, pair):
        workload = Workload(
            jobs=tuple(
                job(f"j{i}", submit_s=0.001 * i, priority=i % 2)
                for i in range(6)
            ),
            seed=3,
        )
        first = JobService(pair).run_workload(workload).trace_json()
        second = JobService(pair).run_workload(workload).trace_json()
        assert first == second
