"""Unit tests for repro.cluster.perfmodel."""

import pytest

from repro.cluster.machine import MachineSpec
from repro.cluster.perfmodel import PerformanceModel, WorkProfile
from repro.errors import ClusterError


def machine(**kw):
    defaults = dict(hw_threads=10, freq_ghz=2.0, mem_bw_gbs=10.0, llc_mb=10.0)
    defaults.update(kw)
    return MachineSpec("test", **defaults)


class TestWorkProfile:
    def test_addition(self):
        a = WorkProfile(flops=1, serial_flops=2, streaming_bytes=3,
                        cacheable_bytes=4, working_set_mb=5)
        b = WorkProfile(flops=10, serial_flops=20, streaming_bytes=30,
                        cacheable_bytes=40, working_set_mb=2)
        c = a + b
        assert c.flops == 11 and c.serial_flops == 22
        assert c.streaming_bytes == 33 and c.cacheable_bytes == 44
        # Working set is intensive: combining keeps the maximum.
        assert c.working_set_mb == 5

    def test_scaled(self):
        w = WorkProfile(flops=2, serial_flops=4, streaming_bytes=6,
                        cacheable_bytes=8, working_set_mb=3)
        s = w.scaled(0.5)
        assert s.flops == 1 and s.cacheable_bytes == 4
        assert s.working_set_mb == 3  # intensive, untouched

    def test_total_flops(self):
        assert WorkProfile(flops=3, serial_flops=2).total_flops == 5

    def test_negative_rejected(self):
        with pytest.raises(ClusterError):
            WorkProfile(flops=-1)

    def test_negative_scale_rejected(self):
        with pytest.raises(ClusterError):
            WorkProfile().scaled(-1)


class TestParallelEfficiency:
    def test_single_thread_perfect(self):
        assert PerformanceModel().parallel_efficiency(1) == 1.0

    def test_decays_with_threads(self):
        pm = PerformanceModel()
        assert pm.parallel_efficiency(34) < pm.parallel_efficiency(2)

    def test_zero_decay(self):
        pm = PerformanceModel(efficiency_decay=0.0)
        assert pm.parallel_efficiency(64) == 1.0

    def test_invalid_threads(self):
        with pytest.raises(ClusterError):
            PerformanceModel().parallel_efficiency(0)


class TestMissRate:
    def test_fits_hits_floor(self):
        pm = PerformanceModel(min_miss_rate=0.3)
        assert pm.miss_rate(machine(llc_mb=100), 1.0) == 0.3

    def test_no_fit_misses(self):
        pm = PerformanceModel(min_miss_rate=0.1)
        assert pm.miss_rate(machine(llc_mb=1), 100.0) == pytest.approx(0.99)

    def test_zero_working_set(self):
        pm = PerformanceModel(min_miss_rate=0.2)
        assert pm.miss_rate(machine(), 0.0) == 0.2

    def test_model_scale_shrinks_effective_llc(self):
        """Cache-fit ratios are invariant when graph and LLC shrink together."""
        full = PerformanceModel(model_scale=1.0)
        scaled = PerformanceModel(model_scale=0.01)
        m = machine(llc_mb=10)
        assert scaled.miss_rate(m, 1.0) == pytest.approx(full.miss_rate(m, 100.0))


class TestExecutionTime:
    def test_pure_compute_scales_with_threads(self):
        pm = PerformanceModel(efficiency_decay=0.0)
        w = WorkProfile(flops=1e9)
        t2 = pm.execution_time(machine(), w, threads=2)
        t8 = pm.execution_time(machine(), w, threads=8)
        assert t2 / t8 == pytest.approx(4.0)

    def test_serial_ignores_threads(self):
        pm = PerformanceModel()
        w = WorkProfile(serial_flops=1e9)
        t1 = pm.execution_time(machine(), w, threads=1)
        t8 = pm.execution_time(machine(), w, threads=8)
        assert t1 == pytest.approx(t8)

    def test_memory_term_uses_bandwidth(self):
        pm = PerformanceModel()
        w = WorkProfile(streaming_bytes=10e9)
        assert pm.execution_time(machine(mem_bw_gbs=10), w) == pytest.approx(1.0)

    def test_cacheable_cheaper_when_resident(self):
        pm = PerformanceModel(min_miss_rate=0.1)
        w = WorkProfile(cacheable_bytes=1e9, working_set_mb=5.0)
        big = machine(llc_mb=50)
        small = machine(llc_mb=0.5)
        assert pm.execution_time(big, w) < pm.execution_time(small, w)

    def test_faster_clock_faster_compute(self):
        pm = PerformanceModel()
        w = WorkProfile(flops=1e9)
        assert pm.execution_time(machine(freq_ghz=4.0), w) < pm.execution_time(
            machine(freq_ghz=2.0), w
        )

    def test_default_threads_are_compute_threads(self):
        pm = PerformanceModel(efficiency_decay=0.0)
        w = WorkProfile(flops=1e9)
        m = machine(hw_threads=10)  # 8 compute threads
        assert pm.execution_time(m, w) == pytest.approx(
            pm.execution_time(m, w, threads=8)
        )

    def test_zero_work_zero_time(self):
        assert PerformanceModel().execution_time(machine(), WorkProfile()) == 0.0

    def test_invalid_threads(self):
        with pytest.raises(ClusterError):
            PerformanceModel().execution_time(machine(), WorkProfile(), threads=0)


class TestThroughput:
    def test_positive(self):
        pm = PerformanceModel()
        w = WorkProfile(flops=1e6, streaming_bytes=1e6)
        assert pm.throughput(machine(), w) > 0

    def test_zero_time_raises(self):
        with pytest.raises(ClusterError):
            PerformanceModel().throughput(machine(), WorkProfile())


class TestValidation:
    @pytest.mark.parametrize("kw", [
        {"model_scale": 0.0},
        {"model_scale": 1.5},
        {"efficiency_decay": -0.1},
        {"min_miss_rate": 1.5},
    ])
    def test_bad_params(self, kw):
        with pytest.raises(ClusterError):
            PerformanceModel(**kw)
