"""Per-rule tests: every rule fires on its bad fixture, stays silent on
the good one.  Fixtures live under ``tests/analysis/fixtures/`` and are
linted with module overrides so package-scoped rules apply."""

import os

import pytest

from repro.analysis import all_rules, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as fh:
        return fh.read()


def lint_fixture(name: str, rule_id: str, module=None):
    return lint_source(
        fixture(name),
        path=os.path.join(FIXTURES, name),
        module=module,
        rules=all_rules(only=[rule_id]),
    )


class TestDET001:
    def test_bad_fixture_fires(self):
        report = lint_fixture("det001_bad.py", "DET001")
        assert len(report.findings) == 7
        messages = " ".join(f.message for f in report.findings)
        assert "time.time()" in messages
        assert "time.monotonic()" in messages
        assert "time.perf_counter()" in messages
        assert "datetime.datetime.now()" in messages
        assert "uuid.uuid4()" in messages
        assert "os.urandom()" in messages
        assert "random.randint()" in messages

    def test_good_fixture_clean(self):
        report = lint_fixture("det001_good.py", "DET001")
        assert report.clean
        assert not report.suppressed

    def test_findings_carry_position_and_severity(self):
        report = lint_fixture("det001_bad.py", "DET001")
        first = report.findings[0]
        assert first.rule_id == "DET001"
        assert first.severity.value == "error"
        assert first.line > 0
        assert first.file.endswith("det001_bad.py")


class TestDET002:
    def test_bad_fixture_fires(self):
        report = lint_fixture("det002_bad.py", "DET002")
        # 4 unseeded constructions + 3 global-state draws.
        assert len(report.findings) == 7
        messages = " ".join(f.message for f in report.findings)
        assert "numpy.random.default_rng()" in messages
        assert "random.Random()" in messages
        assert "hidden global" in messages

    def test_good_fixture_clean(self):
        report = lint_fixture("det002_good.py", "DET002")
        assert report.clean


class TestDET003:
    MODULE = "repro.partition.fixture"

    def test_bad_fixture_fires(self):
        report = lint_fixture("det003_bad.py", "DET003", module=self.MODULE)
        # for loop + list comp + dict comp + order-sensitive genexp.
        assert len(report.findings) == 4
        kinds = " ".join(f.message for f in report.findings)
        assert "for loop" in kinds
        assert "list comprehension" in kinds
        assert "dict comprehension" in kinds
        assert "generator expression" in kinds

    def test_good_fixture_clean(self):
        report = lint_fixture("det003_good.py", "DET003", module=self.MODULE)
        assert report.clean

    def test_out_of_scope_module_ignored(self):
        report = lint_fixture(
            "det003_bad.py", "DET003", module="repro.apps.fixture"
        )
        assert report.clean

    def test_severity_is_warning(self):
        report = lint_fixture("det003_bad.py", "DET003", module=self.MODULE)
        assert {f.severity.value for f in report.findings} == {"warning"}


class TestOBS001:
    def test_obs_importing_engine_fires(self):
        report = lint_fixture(
            "obs001_bad_obs.py", "OBS001", module="repro.obs.fixture"
        )
        assert len(report.findings) == 3
        messages = " ".join(f.message for f in report.findings)
        assert "repro.engine.runtime" in messages
        assert "repro.partition" in messages
        assert "repro.core.ccr" in messages

    def test_library_binding_obs_internals_fires(self):
        report = lint_fixture(
            "obs001_bad_lib.py", "OBS001", module="repro.partition.fixture"
        )
        assert len(report.findings) == 3
        messages = " ".join(f.message for f in report.findings)
        assert "repro.obs.span" in messages
        assert "repro.obs.metrics" in messages
        assert "repro.obs.artifacts" in messages

    def test_curated_surface_clean(self):
        report = lint_fixture(
            "obs001_good.py", "OBS001", module="repro.partition.fixture"
        )
        assert report.clean

    def test_non_repro_module_ignored(self):
        report = lint_fixture(
            "obs001_bad_lib.py", "OBS001", module="thirdparty.tool"
        )
        assert report.clean


class TestERR001:
    def test_bad_fixture_fires(self):
        report = lint_fixture("err001_bad.py", "ERR001")
        assert len(report.findings) == 3
        messages = " ".join(f.message for f in report.findings)
        assert "bare `except:`" in messages
        assert "`except Exception`" in messages

    def test_good_fixture_clean(self):
        report = lint_fixture("err001_good.py", "ERR001")
        assert report.clean


class TestAPI001:
    MODULE = "repro.partition.fixture"

    def test_bad_fixture_fires(self):
        report = lint_fixture("api001_bad.py", "API001", module=self.MODULE)
        assert len(report.findings) == 2
        names = " ".join(f.message for f in report.findings)
        assert "shuffle_edges()" in names
        assert "__init__()" in names

    def test_good_fixture_clean(self):
        report = lint_fixture("api001_good.py", "API001", module=self.MODULE)
        assert report.clean

    def test_out_of_scope_module_ignored(self):
        report = lint_fixture(
            "api001_bad.py", "API001", module="repro.apps.fixture"
        )
        assert report.clean


class TestRuleRegistry:
    def test_all_rules_cover_the_documented_set(self):
        ids = {r.rule_id for r in all_rules()}
        assert {
            "DET001",
            "DET002",
            "DET003",
            "OBS001",
            "ERR001",
            "API001",
        } <= ids

    def test_unknown_rule_id_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            all_rules(only=["NOPE999"])

    def test_rules_have_descriptions_and_severities(self):
        for rule in all_rules():
            assert rule.description
            assert rule.severity.value in ("error", "warning")
