"""Framework tests: suppressions, baselines, file collection, module
naming, and the syntax-error path."""

import json
import os

import pytest

from repro.analysis import (
    Baseline,
    all_rules,
    lint_paths,
    lint_source,
    module_name_for_path,
)
from repro.analysis.runner import SYNTAX_RULE_ID, collect_files
from repro.analysis.suppressions import parse_suppressions
from repro.errors import ReproError

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as fh:
        return fh.read()


class TestSuppressions:
    def test_line_scope_parsing(self):
        sup = parse_suppressions(
            "x = 1\ny = 2  # repro: allow[DET001]\nz = 3\n"
        )
        assert sup.allows("DET001", 2)
        assert not sup.allows("DET001", 1)
        assert not sup.allows("DET002", 2)

    def test_wildcard_and_multiple_ids(self):
        sup = parse_suppressions(
            "a = 1  # repro: allow[DET001, DET002]\nb = 2  # repro: allow[*]\n"
        )
        assert sup.allows("DET001", 1)
        assert sup.allows("DET002", 1)
        assert not sup.allows("DET003", 1)
        assert sup.allows("ANYTHING", 2)

    def test_file_scope(self):
        sup = parse_suppressions("# repro: allow-file[DET001]\nx = 1\n")
        assert sup.allows("DET001", 99)
        assert not sup.allows("DET002", 99)

    def test_suppressed_fixture_counts_but_does_not_fail(self):
        report = lint_source(
            fixture("suppressed.py"),
            path="suppressed.py",
            rules=all_rules(only=["DET001"]),
        )
        assert report.clean
        assert len(report.suppressed) == 2

    def test_file_wide_suppression(self):
        report = lint_source(
            fixture("suppressed_file.py"),
            path="suppressed_file.py",
            rules=all_rules(only=["DET001"]),
        )
        assert report.clean
        assert len(report.suppressed) == 2


class TestBaseline:
    def bad_report(self):
        return lint_source(
            fixture("det001_bad.py"),
            path="det001_bad.py",
            rules=all_rules(only=["DET001"]),
        )

    def test_roundtrip_and_split(self, tmp_path):
        report = self.bad_report()
        path = str(tmp_path / "baseline.json")
        Baseline.from_findings(report.findings).save(path)
        loaded = Baseline.load(path)
        new, known = loaded.split(report.findings)
        assert not new
        assert len(known) == len(report.findings)

    def test_baseline_is_line_number_insensitive(self, tmp_path):
        report = self.bad_report()
        path = str(tmp_path / "baseline.json")
        Baseline.from_findings(report.findings).save(path)
        shifted = lint_source(
            "# a new leading comment shifts every line\n"
            + fixture("det001_bad.py"),
            path="det001_bad.py",
            rules=all_rules(only=["DET001"]),
        )
        new, known = Baseline.load(path).split(shifted.findings)
        assert not new
        assert len(known) == len(report.findings)

    def test_new_findings_escape_the_baseline(self, tmp_path):
        report = self.bad_report()
        path = str(tmp_path / "baseline.json")
        Baseline.from_findings(report.findings[:-1]).save(path)
        new, known = Baseline.load(path).split(report.findings)
        assert len(new) == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "entries": []}')
        with pytest.raises(ReproError):
            Baseline.load(str(path))
        path.write_text("not json at all")
        with pytest.raises(ReproError):
            Baseline.load(str(path))

    def test_lint_paths_applies_baseline(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\n\nx = time.time()\n")
        first = lint_paths([str(target)], rules=all_rules(only=["DET001"]))
        assert len(first.findings) == 1
        bpath = str(tmp_path / "baseline.json")
        Baseline.from_findings(first.findings).save(bpath)
        second = lint_paths(
            [str(target)],
            rules=all_rules(only=["DET001"]),
            baseline=Baseline.load(bpath),
        )
        assert second.clean
        assert len(second.baselined) == 1


class TestCollectFiles:
    def test_sorted_dedup_and_walk(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-312.pyc").write_text("")
        (tmp_path / "pkg" / ".hidden" / "c.py").write_text("x = 1\n")
        files = collect_files(
            [str(tmp_path / "pkg"), str(tmp_path / "pkg" / "a.py")]
        )
        names = [os.path.basename(f) for f in files]
        assert names == ["a.py", "b.py"]

    def test_missing_path_raises(self):
        with pytest.raises(ReproError):
            collect_files(["/no/such/lint/path"])


class TestModuleNaming:
    def test_src_layout_resolves_dotted_name(self):
        path = os.path.join("src", "repro", "partition", "base.py")
        assert module_name_for_path(path) == "repro.partition.base"

    def test_init_module_is_the_package(self):
        path = os.path.join("src", "repro", "partition", "__init__.py")
        assert module_name_for_path(path) == "repro.partition"

    def test_real_tree_agrees(self):
        root = os.path.join(
            os.path.dirname(__file__), "..", "..", "src", "repro", "obs"
        )
        path = os.path.normpath(os.path.join(root, "span.py"))
        assert module_name_for_path(path) == "repro.obs.span"


class TestSyntaxErrors:
    def test_unparseable_file_is_a_finding_not_a_crash(self):
        report = lint_source("def broken(:\n", path="broken.py")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule_id == SYNTAX_RULE_ID
        assert "does not parse" in finding.message

    def test_report_counts_the_file(self):
        report = lint_source("def broken(:\n", path="broken.py")
        assert report.files_scanned == 1


class TestReport:
    def test_per_rule_counts_include_hidden_populations(self):
        report = lint_source(
            fixture("suppressed.py"),
            path="suppressed.py",
            rules=all_rules(only=["DET001"]),
        )
        raw = report.per_rule_counts(include_hidden=True)
        visible = report.per_rule_counts(include_hidden=False)
        assert raw["DET001"] == 2
        assert visible["DET001"] == 0

    def test_findings_sort_by_position(self):
        report = lint_source(
            fixture("det001_bad.py"),
            path="det001_bad.py",
            rules=all_rules(only=["DET001"]),
        )
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)

    def test_json_document_roundtrips(self):
        from repro.analysis import render_json

        report = lint_source(
            fixture("det001_bad.py"),
            path="det001_bad.py",
            rules=all_rules(only=["DET001"]),
        )
        doc = json.loads(render_json(report, all_rules(only=["DET001"])))
        assert doc["format_version"] == 1
        assert doc["tool"] == "repro-lint"
        assert doc["summary"]["findings"] == len(report.findings)
        assert doc["rules"][0]["id"] == "DET001"
