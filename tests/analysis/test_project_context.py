"""Whole-program infrastructure: symbol resolution, the call graph's
structural properties (hypothesis-pinned), and the summary cache."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Baseline,
    CallGraph,
    ProjectContext,
    SummaryCache,
    all_rules,
    lint_paths,
    ruleset_signature,
)
from repro.analysis.callgraph import CallEdge
from repro.analysis.project import ModuleSummary, source_sha256

# --------------------------------------------------------------------- #
# Symbol resolution
# --------------------------------------------------------------------- #

PKG_INIT = "from repro.fx.impl import make_rng\n"
IMPL = "def make_rng(seed):\n    return seed\n"
CALLER = (
    "from repro.fx import make_rng\n"
    "\n"
    "def use(seed):\n"
    "    return make_rng(seed)\n"
)


def three_module_project():
    return ProjectContext.from_sources(
        [
            (PKG_INIT, "src/repro/fx/__init__.py", "repro.fx"),
            (IMPL, "src/repro/fx/impl.py", "repro.fx.impl"),
            (CALLER, "src/repro/use.py", "repro.use"),
        ]
    )


class TestResolution:
    def test_reexport_chain_is_chased(self):
        project = three_module_project()
        target = project.resolve_callable("repro.use", "repro.fx.make_rng")
        assert target is not None
        assert target.qualname == "repro.fx.impl.make_rng"

    def test_unknown_name_is_none(self):
        project = three_module_project()
        assert project.resolve_callable("repro.use", "numpy.zeros") is None

    def test_self_method_resolves_when_unambiguous(self):
        source = (
            "class Engine:\n"
            "    def run(self):\n"
            "        return self.step()\n"
            "\n"
            "    def step(self):\n"
            "        return 1\n"
        )
        project = ProjectContext.from_sources(
            [(source, "src/repro/e.py", "repro.e")]
        )
        target = project.resolve_callable("repro.e", "self.step")
        assert target is not None and target.qualname == "repro.e.Engine.step"

    def test_class_name_resolves_to_init(self):
        source = (
            "class Engine:\n"
            "    def __init__(self, seed):\n"
            "        self.seed = seed\n"
        )
        project = ProjectContext.from_sources(
            [(source, "src/repro/e.py", "repro.e")]
        )
        target = project.resolve_callable("repro.e", "repro.e.Engine")
        assert target is not None
        assert target.qualname == "repro.e.Engine.__init__"

    def test_call_graph_edge_for_reexported_callee(self):
        project = three_module_project()
        graph = project.call_graph()
        assert any(
            e.caller == "repro.use.use"
            and e.callee == "repro.fx.impl.make_rng"
            for e in graph.edges
        )


# --------------------------------------------------------------------- #
# Structural properties
# --------------------------------------------------------------------- #


def _make_sources(n_modules, calls):
    """Modules m0..m{n-1}, each with f(); ``calls`` maps i -> set of j."""
    entries = []
    for i in range(n_modules):
        lines = [f"import repro.m{j}" for j in sorted(calls.get(i, ()))]
        body = ["def f():"] + (
            [f"    repro.m{j}.f()" for j in sorted(calls.get(i, ()))]
            or ["    pass"]
        )
        source = "\n".join(lines + body) + "\n"
        entries.append((source, f"src/repro/m{i}.py", f"repro.m{i}"))
    return entries


class TestEdgeSetStability:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_edges_independent_of_module_ordering(self, data):
        n = data.draw(st.integers(min_value=2, max_value=5))
        calls = {
            i: data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1).filter(
                        lambda j, i=i: j != i
                    ),
                    max_size=n - 1,
                )
            )
            for i in range(n)
        }
        entries = _make_sources(n, calls)
        shuffled = data.draw(st.permutations(entries))
        base = ProjectContext.from_sources(entries).call_graph()
        permuted = ProjectContext.from_sources(shuffled).call_graph()
        assert base.edges == permuted.edges
        assert base.external == permuted.external
        assert base.nodes == permuted.nodes


def _edge(pair):
    a, b = pair
    return CallEdge(caller=f"n{a}", callee=f"n{b}", file="f.py", line=1)


class TestReachabilityMonotone:
    @settings(max_examples=100, deadline=None)
    @given(
        base=st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
            ),
            max_size=20,
        ),
        extra=st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
            ),
            max_size=10,
        ),
        targets=st.sets(
            st.integers(min_value=0, max_value=7), min_size=1, max_size=3
        ),
    )
    def test_adding_edges_never_shrinks_closure(self, base, extra, targets):
        nodes = {f"n{i}" for i in range(8)}
        small = CallGraph.from_edges(map(_edge, base), nodes=nodes)
        large = CallGraph.from_edges(
            map(_edge, base | extra), nodes=nodes
        )
        target_names = {f"n{i}" for i in targets}
        assert small.reachable_to(target_names) <= large.reachable_to(
            target_names
        )

    def test_reachability_is_inclusive_and_transitive(self):
        graph = CallGraph.from_edges(map(_edge, {(0, 1), (1, 2), (3, 0)}))
        assert graph.reachable_to({"n2"}) == {"n0", "n1", "n2", "n3"}
        assert graph.reachable_to({"n3"}) == {"n3"}


# --------------------------------------------------------------------- #
# Summary cache
# --------------------------------------------------------------------- #


class TestSummaryCache:
    def _write_tree(self, tmp_path, body="x = 1\n"):
        target = tmp_path / "mod.py"
        target.write_text(body)
        return str(target)

    def test_roundtrip_preserves_summary_and_findings(self, tmp_path):
        target = self._write_tree(tmp_path, "import time\nt = time.time()\n")
        cpath = str(tmp_path / "cache.json")
        rules = all_rules()
        sig = ruleset_signature(rules)
        cold = lint_paths(
            [target], rules=rules, cache=SummaryCache(cpath, sig)
        )
        warm = lint_paths(
            [target], rules=rules, cache=SummaryCache(cpath, sig)
        )
        assert cold.cache_misses == 1 and cold.cache_hits == 0
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert [f.fingerprint() for f in cold.findings] == [
            f.fingerprint() for f in warm.findings
        ]

    def test_content_change_invalidates_entry(self, tmp_path):
        target = self._write_tree(tmp_path)
        cpath = str(tmp_path / "cache.json")
        sig = ruleset_signature(all_rules())
        lint_paths([target], cache=SummaryCache(cpath, sig))
        with open(target, "a", encoding="utf-8") as fh:
            fh.write("y = 2\n")
        warm = lint_paths([target], cache=SummaryCache(cpath, sig))
        assert warm.cache_misses == 1

    def test_signature_mismatch_discards_whole_cache(self, tmp_path):
        target = self._write_tree(tmp_path)
        cpath = str(tmp_path / "cache.json")
        lint_paths([target], cache=SummaryCache(cpath, "v1:A"))
        warm = lint_paths([target], cache=SummaryCache(cpath, "v1:B"))
        assert warm.cache_misses == 1 and warm.cache_hits == 0

    def test_corrupt_cache_is_discarded_not_fatal(self, tmp_path):
        target = self._write_tree(tmp_path)
        cpath = str(tmp_path / "cache.json")
        with open(cpath, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        report = lint_paths([target], cache=SummaryCache(cpath, "v1:A"))
        assert report.files_scanned == 1
        with open(cpath, "r", encoding="utf-8") as fh:
            assert json.load(fh)["signature"] == "v1:A"

    def test_cached_run_still_joins_project_phase(self, tmp_path):
        """Interprocedural findings must re-derive on warm runs."""
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("def run(seed):\n    return 1\n")
        b.write_text("x = 1\n")
        cpath = str(tmp_path / "cache.json")
        rules = all_rules(only=["DET005"])
        sig = ruleset_signature(rules)
        cold = lint_paths(
            [str(tmp_path)], rules=rules, cache=SummaryCache(cpath, sig)
        )
        warm = lint_paths(
            [str(tmp_path)], rules=rules, cache=SummaryCache(cpath, sig)
        )
        assert len(cold.findings) == len(warm.findings) == 1
        assert warm.cache_hits == 2

    def test_module_summary_roundtrips_through_json(self, tmp_path):
        source = (
            "from repro.utils.rng import make_rng\n"
            "\n"
            "def run(seed):  # repro: allow[DET005]\n"
            "    total = 0.0\n"
            "    return total\n"
        )
        project = ProjectContext.from_sources(
            [(source, "src/repro/r.py", "repro.r")]
        )
        summary = project.modules["repro.r"]
        clone = ModuleSummary.from_jsonable(
            json.loads(json.dumps(summary.to_jsonable()))
        )
        assert clone == summary
        assert clone.sha256 == source_sha256(source)


class TestBaselineStale:
    def test_stale_computation(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nt = time.time()\n")
        report = lint_paths([str(target)])
        baseline = Baseline.from_findings(report.findings)
        assert baseline.stale(report.findings) == []
        stale = baseline.stale([])
        assert len(stale) == 1
        assert stale[0][1] == "DET001"
