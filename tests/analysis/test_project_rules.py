"""Whole-program rule tests: DET004–DET006, STORE001/STORE002, FED001,
ERR002.  Each rule fires on its bad fixture, stays silent on the good
one, and honors ``# repro: allow[...]`` suppression — for project rules
that exercises the :meth:`ProjectContext.split_suppressed` path, not the
module-phase filter."""

import os

from repro.analysis import all_rules, lint_source, lint_sources

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as fh:
        return fh.read()


def lint_fixture(name: str, rule_id: str, module=None):
    return lint_source(
        fixture(name),
        path=os.path.join(FIXTURES, name),
        module=module,
        rules=all_rules(only=[rule_id]),
    )


class TestDET004:
    def test_bad_fixture_fires(self):
        report = lint_fixture("det004_bad.py", "DET004")
        assert len(report.findings) == 2
        messages = " ".join(f.message for f in report.findings)
        assert "multiple shard/machine scopes" in messages
        assert "inside a loop" in messages
        assert all(f.trace for f in report.findings)

    def test_good_fixture_clean(self):
        report = lint_fixture("det004_good.py", "DET004")
        assert report.clean
        assert not report.suppressed

    def test_trace_names_origin_and_sites(self):
        report = lint_fixture("det004_bad.py", "DET004")
        sharing = next(
            f for f in report.findings if "at lines" in f.message
        )
        assert "created here" in sharing.trace[0]
        assert sum("passed into scope" in h for h in sharing.trace) == 2

    def test_suppression_honored(self):
        source = fixture("det004_bad.py").replace(
            "    first = ShardWorker(rng)",
            "    first = ShardWorker(rng)  # repro: allow[DET004]",
        )
        report = lint_source(
            source, path="x.py", rules=all_rules(only=["DET004"])
        )
        # The two-site finding anchors on its first site; the loop one
        # in build_fleet still fires.
        assert len(report.findings) == 1
        assert len(report.suppressed) == 1


class TestDET005:
    def test_bad_fixture_fires(self):
        report = lint_fixture("det005_bad.py", "DET005")
        assert len(report.findings) == 2
        by_msg = {f.message.split("(")[0]: f for f in report.findings}
        assert any("run_trial" in m for m in by_msg)
        assert any("ignored" in m for m in by_msg)

    def test_good_fixture_clean(self):
        report = lint_fixture("det005_good.py", "DET005")
        assert report.clean

    def test_trace_crosses_call_boundary(self):
        report = lint_fixture("det005_bad.py", "DET005")
        forwarded = next(
            f for f in report.findings if "run_trial" in f.message
        )
        assert len(forwarded.trace) == 3
        assert "accepted by run_trial()" in forwarded.trace[0]
        assert "passed to _sink() as 'seed'" in forwarded.trace[1]
        assert "no resolved path" in forwarded.trace[2]

    def test_cross_module_trace(self):
        """The interprocedural case: entry and sink in different modules."""
        entry = (
            "from repro.apps.sweep import launch\n"
            "\n"
            "def run_experiment(seed):\n"
            "    return launch(seed)\n"
        )
        sink = "def launch(seed):\n    return 42\n"
        report = lint_sources(
            [
                (entry, "src/repro/apps/driver.py", "repro.apps.driver"),
                (sink, "src/repro/apps/sweep.py", "repro.apps.sweep"),
            ],
            rules=all_rules(only=["DET005"]),
        )
        files = {f.file for f in report.findings}
        entry_finding = next(
            f for f in report.findings if "run_experiment" in f.message
        )
        assert "src/repro/apps/driver.py" in files
        hops = "\n".join(entry_finding.trace)
        assert "driver.py" in hops and "passed to launch()" in hops

    def test_suppression_honored(self):
        source = "def ignored(seed):  # repro: allow[DET005]\n    return 7\n"
        report = lint_source(
            source, path="x.py", rules=all_rules(only=["DET005"])
        )
        assert report.clean
        assert len(report.suppressed) == 1


class TestDET006:
    def test_bad_fixture_fires(self):
        report = lint_fixture("det006_bad.py", "DET006")
        assert len(report.findings) == 2
        messages = " ".join(f.message for f in report.findings)
        assert "float-accumulates" in messages
        assert "set literal/comprehension" in messages
        assert "variable 'degrees' (set-valued)" in messages

    def test_good_fixture_clean(self):
        report = lint_fixture("det006_good.py", "DET006")
        assert report.clean

    def test_trace_links_both_sides(self):
        report = lint_fixture("det006_bad.py", "DET006")
        first = report.findings[0]
        assert len(first.trace) == 2
        assert "passed to fold()" in first.trace[0]
        assert "float accumulation over 'weights'" in first.trace[1]

    def test_suppression_honored(self):
        source = fixture("det006_bad.py").replace(
            "    return fold(degrees)",
            "    return fold(degrees)  # repro: allow[DET006]",
        )
        report = lint_source(
            source, path="x.py", rules=all_rules(only=["DET006"])
        )
        assert len(report.findings) == 1
        assert len(report.suppressed) == 1


class TestSTORE001:
    def test_bad_fixture_fires_outside_store(self):
        report = lint_fixture(
            "store001_bad.py", "STORE001", module="repro.service.sneaky"
        )
        assert len(report.findings) == 2
        messages = " ".join(f.message for f in report.findings)
        assert "sqlite3.connect" in messages
        assert ".execute()" in messages

    def test_same_code_inside_store_is_silent(self):
        report = lint_fixture(
            "store001_bad.py", "STORE001", module="repro.store.migrations"
        )
        assert report.clean

    def test_outside_repro_is_silent(self):
        report = lint_fixture(
            "store001_bad.py", "STORE001", module="scripts.tool"
        )
        assert report.clean

    def test_good_fixture_clean(self):
        report = lint_fixture(
            "store001_good.py", "STORE001", module="repro.service.reader"
        )
        assert report.clean

    def test_suppression_honored(self):
        source = fixture("store001_bad.py").replace(
            "    conn = sqlite3.connect(path)",
            "    conn = sqlite3.connect(path)  # repro: allow[STORE001]",
        )
        report = lint_source(
            source,
            path="x.py",
            module="repro.service.sneaky",
            rules=all_rules(only=["STORE001"]),
        )
        assert len(report.findings) == 1
        assert len(report.suppressed) == 1


class TestSTORE002:
    def test_bad_fixture_fires(self):
        report = lint_fixture(
            "store002_bad.py", "STORE002", module="repro.store.helpers"
        )
        assert len(report.findings) == 2
        verbs = " ".join(f.message for f in report.findings)
        assert "UPDATE" in verbs and "DELETE" in verbs

    def test_good_fixture_clean(self):
        report = lint_fixture(
            "store002_good.py", "STORE002", module="repro.store.helpers"
        )
        assert report.clean

    def test_outside_store_is_silent(self):
        report = lint_fixture(
            "store002_bad.py", "STORE002", module="repro.service.other"
        )
        assert report.clean

    def test_suppression_honored(self):
        source = fixture("store002_bad.py").replace(
            '    conn.execute("UPDATE',
            '    conn.execute(  # repro: allow[STORE002]\n        "UPDATE',
        )
        report = lint_source(
            source,
            path="x.py",
            module="repro.store.helpers",
            rules=all_rules(only=["STORE002"]),
        )
        assert len(report.findings) == 1
        assert len(report.suppressed) == 1


class TestFED001:
    def test_bad_fixture_fires(self):
        report = lint_fixture(
            "fed001_bad.py", "FED001", module="repro.federation.fx"
        )
        assert len(report.findings) == 2
        messages = " ".join(f.message for f in report.findings)
        assert "append-only" in messages
        assert "item assignment" in messages
        assert ".clear()" in messages

    def test_good_fixture_clean(self):
        report = lint_fixture(
            "fed001_good.py", "FED001", module="repro.federation.fx"
        )
        assert report.clean

    def test_outside_federation_is_silent(self):
        report = lint_fixture(
            "fed001_bad.py", "FED001", module="repro.service.fx"
        )
        assert report.clean

    def test_suppression_honored(self):
        source = fixture("fed001_bad.py").replace(
            "        self._entries.clear()",
            "        self._entries.clear()  # repro: allow[FED001]",
        )
        report = lint_source(
            source,
            path="x.py",
            module="repro.federation.fx",
            rules=all_rules(only=["FED001"]),
        )
        assert len(report.findings) == 1
        assert len(report.suppressed) == 1


class TestERR002:
    def test_bad_fixture_fires(self):
        report = lint_fixture(
            "err002_bad.py", "ERR002", module="repro.service.fx"
        )
        assert len(report.findings) == 3
        messages = " ".join(f.message for f in report.findings)
        assert "StoreError" in messages
        assert "ConvergenceError" in messages
        assert "StoreSchemaError" in messages

    def test_good_fixture_clean(self):
        report = lint_fixture(
            "err002_good.py", "ERR002", module="repro.service.fx"
        )
        assert report.clean

    def test_outside_repro_is_silent(self):
        report = lint_fixture(
            "err002_bad.py", "ERR002", module="scripts.tool"
        )
        assert report.clean

    def test_suppression_honored(self):
        source = fixture("err002_bad.py").replace(
            "    except StoreError:",
            "    except StoreError:  # repro: allow[ERR002]",
        )
        report = lint_source(
            source,
            path="x.py",
            module="repro.service.fx",
            rules=all_rules(only=["ERR002"]),
        )
        assert len(report.findings) == 2
        assert len(report.suppressed) == 1


class TestFindingRendering:
    def test_trace_rendered_in_text_and_json(self):
        report = lint_fixture("det005_bad.py", "DET005")
        finding = next(f for f in report.findings if f.trace)
        text = finding.render()
        assert "\n    trace: " in text
        doc = finding.to_jsonable()
        assert doc["trace"] == list(finding.trace)

    def test_module_findings_have_empty_trace(self):
        report = lint_fixture("err002_bad.py", "ERR002",
                              module="repro.service.fx")
        assert all(f.trace == () for f in report.findings)
        assert "trace:" not in report.findings[0].render()
