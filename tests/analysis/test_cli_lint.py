"""CLI contract for ``repro lint``: exit codes, JSON schema, baseline
workflow, stats output, and the self-lint acceptance gate."""

import json
import os

from repro.cli import main

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")
FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
BAD_FIXTURE = os.path.join(FIXTURES, "det001_bad.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0

    def test_findings_exit_one(self, capsys):
        assert main(["lint", BAD_FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "by rule:" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/lint/path"]) == 2
        assert "lint error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--rules", "NOPE999"]) == 2

    def test_write_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", BAD_FIXTURE, "--write-baseline"]) == 2


class TestJsonOutput:
    def test_schema(self, capsys):
        main(["lint", BAD_FIXTURE, "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["format_version"] == 1
        assert doc["tool"] == "repro-lint"
        assert set(doc["summary"]) == {
            "findings",
            "suppressed",
            "baselined",
            "files_scanned",
            "per_rule",
        }
        assert doc["summary"]["files_scanned"] == 1
        assert doc["summary"]["findings"] > 0
        first = doc["findings"][0]
        assert set(first) == {
            "file",
            "line",
            "col",
            "rule",
            "severity",
            "message",
        }
        ids = {r["id"] for r in doc["rules"]}
        assert {"DET001", "DET002", "DET003", "OBS001", "ERR001", "API001"} <= ids

    def test_rule_filter(self, capsys):
        main(["lint", BAD_FIXTURE, "--json", "--rules", "DET002"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["findings"] == 0
        assert [r["id"] for r in doc["rules"]] == ["DET002"]


class TestBaselineWorkflow:
    def test_write_then_pass(self, tmp_path, capsys):
        bpath = str(tmp_path / "baseline.json")
        assert main(
            ["lint", BAD_FIXTURE, "--baseline", bpath, "--write-baseline"]
        ) == 0
        assert "written" in capsys.readouterr().out
        assert main(["lint", BAD_FIXTURE, "--baseline", bpath]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_new_finding_still_fails(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\n\nx = time.time()\n")
        bpath = str(tmp_path / "baseline.json")
        assert main(
            ["lint", str(target), "--baseline", bpath, "--write-baseline"]
        ) == 0
        target.write_text(
            "import time\n\nx = time.time()\ny = time.monotonic()\n"
        )
        assert main(["lint", str(target), "--baseline", bpath]) == 1


class TestStats:
    def test_stats_file_schema(self, tmp_path, capsys):
        spath = str(tmp_path / "stats.json")
        main(["lint", BAD_FIXTURE, "--stats", spath])
        with open(spath, "r", encoding="utf-8") as fh:
            stats = json.load(fh)
        assert stats["files_scanned"] == 1
        assert stats["findings"] > 0
        assert stats["runtime_seconds"] >= 0
        assert "DET001" in stats["per_rule"]


class TestSelfLint:
    def test_src_repro_is_clean(self, capsys):
        """The acceptance gate: the merged tree lints clean."""
        assert main(["lint", SRC_REPRO]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_checked_in_baseline_is_empty(self):
        with open(
            os.path.join(REPO_ROOT, "lint-baseline.json"), encoding="utf-8"
        ) as fh:
            doc = json.load(fh)
        assert doc["format_version"] == 1
        assert doc["entries"] == []
