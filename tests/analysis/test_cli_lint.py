"""CLI contract for ``repro lint``: exit codes, JSON schema, baseline
workflow, stats output, and the self-lint acceptance gate."""

import json
import os

from repro.cli import main

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")
FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
BAD_FIXTURE = os.path.join(FIXTURES, "det001_bad.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0

    def test_findings_exit_one(self, capsys):
        assert main(["lint", BAD_FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "by rule:" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/lint/path"]) == 2
        assert "lint error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--rules", "NOPE999"]) == 2

    def test_write_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", BAD_FIXTURE, "--write-baseline"]) == 2


class TestJsonOutput:
    def test_schema(self, capsys):
        main(["lint", BAD_FIXTURE, "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["format_version"] == 1
        assert doc["tool"] == "repro-lint"
        assert set(doc["summary"]) == {
            "findings",
            "suppressed",
            "baselined",
            "stale_baseline",
            "files_scanned",
            "per_rule",
        }
        assert doc["summary"]["files_scanned"] == 1
        assert doc["summary"]["findings"] > 0
        first = doc["findings"][0]
        assert set(first) == {
            "file",
            "line",
            "col",
            "rule",
            "severity",
            "message",
            "trace",
        }
        ids = {r["id"] for r in doc["rules"]}
        assert {
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "DET005",
            "DET006",
            "OBS001",
            "ERR001",
            "ERR002",
            "API001",
            "STORE001",
            "STORE002",
            "FED001",
        } <= ids

    def test_rule_filter(self, capsys):
        main(["lint", BAD_FIXTURE, "--json", "--rules", "DET002"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["findings"] == 0
        assert [r["id"] for r in doc["rules"]] == ["DET002"]


class TestBaselineWorkflow:
    def test_write_then_pass(self, tmp_path, capsys):
        bpath = str(tmp_path / "baseline.json")
        assert main(
            ["lint", BAD_FIXTURE, "--baseline", bpath, "--write-baseline"]
        ) == 0
        assert "written" in capsys.readouterr().out
        assert main(["lint", BAD_FIXTURE, "--baseline", bpath]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_new_finding_still_fails(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\n\nx = time.time()\n")
        bpath = str(tmp_path / "baseline.json")
        assert main(
            ["lint", str(target), "--baseline", bpath, "--write-baseline"]
        ) == 0
        target.write_text(
            "import time\n\nx = time.time()\ny = time.monotonic()\n"
        )
        assert main(["lint", str(target), "--baseline", bpath]) == 1


class TestStaleBaseline:
    def test_stale_entries_reported_and_pruned(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import time\n\nx = time.time()\n")
        bpath = str(tmp_path / "baseline.json")
        assert main(
            ["lint", str(target), "--baseline", bpath, "--write-baseline"]
        ) == 0
        capsys.readouterr()
        # Fix the finding: the baseline entry is now stale debt.
        target.write_text("x = 1\n")
        spath = str(tmp_path / "stats.json")
        assert main(
            ["lint", str(target), "--baseline", bpath, "--stats", spath]
        ) == 0
        out = capsys.readouterr().out
        assert "stale baseline entries: 1" in out
        with open(spath, "r", encoding="utf-8") as fh:
            assert json.load(fh)["stale_baseline"] == 1
        # Regeneration prunes it and says so.
        assert main(
            ["lint", str(target), "--baseline", bpath, "--write-baseline"]
        ) == 0
        assert "1 stale entry(ies) pruned" in capsys.readouterr().out
        with open(bpath, "r", encoding="utf-8") as fh:
            assert json.load(fh)["entries"] == []

    def test_stale_entries_appear_in_json_report(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import time\n\nx = time.time()\n")
        bpath = str(tmp_path / "baseline.json")
        main(["lint", str(target), "--baseline", bpath, "--write-baseline"])
        capsys.readouterr()
        target.write_text("x = 1\n")
        main(["lint", str(target), "--baseline", bpath, "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["stale_baseline"] == 1
        assert doc["stale_baseline"][0]["rule"] == "DET001"


class TestStats:
    def test_stats_file_schema(self, tmp_path, capsys):
        spath = str(tmp_path / "stats.json")
        main(["lint", BAD_FIXTURE, "--stats", spath])
        with open(spath, "r", encoding="utf-8") as fh:
            stats = json.load(fh)
        assert stats["files_scanned"] == 1
        assert stats["findings"] > 0
        assert stats["runtime_seconds"] >= 0
        assert "DET001" in stats["per_rule"]
        assert stats["stale_baseline"] == 0
        assert stats["ruleset"].startswith("v")


class TestSummaryCache:
    def test_warm_run_hits_and_agrees(self, tmp_path, capsys):
        cpath = str(tmp_path / "cache.json")
        s1 = str(tmp_path / "s1.json")
        s2 = str(tmp_path / "s2.json")
        assert main(
            ["lint", BAD_FIXTURE, "--cache", cpath, "--stats", s1]
        ) == 1
        capsys.readouterr()
        assert main(
            ["lint", BAD_FIXTURE, "--cache", cpath, "--stats", s2]
        ) == 1
        with open(s1, encoding="utf-8") as fh:
            cold_stats = json.load(fh)
        with open(s2, encoding="utf-8") as fh:
            warm_stats = json.load(fh)
        assert cold_stats["cache_hits"] == 0
        assert cold_stats["cache_misses"] == 1
        assert warm_stats["cache_hits"] == 1
        assert warm_stats["cache_misses"] == 0
        assert cold_stats["per_rule"] == warm_stats["per_rule"]

    def test_rule_filter_invalidates_cache(self, tmp_path, capsys):
        cpath = str(tmp_path / "cache.json")
        spath = str(tmp_path / "s.json")
        main(["lint", BAD_FIXTURE, "--cache", cpath])
        capsys.readouterr()
        main(
            [
                "lint",
                BAD_FIXTURE,
                "--cache",
                cpath,
                "--rules",
                "DET001",
                "--stats",
                spath,
            ]
        )
        with open(spath, encoding="utf-8") as fh:
            stats = json.load(fh)
        # Different rule set => different signature => cold run.
        assert stats["cache_hits"] == 0


class TestGraphArtifact:
    def test_graph_json_written(self, tmp_path, capsys):
        gdir = str(tmp_path / "graph")
        main(["lint", BAD_FIXTURE, "--graph", gdir])
        capsys.readouterr()
        with open(
            os.path.join(gdir, "lint-graph.json"), encoding="utf-8"
        ) as fh:
            doc = json.load(fh)
        assert doc["format_version"] == 1
        assert set(doc) == {
            "format_version",
            "ruleset",
            "call_graph",
            "taint_edges",
        }
        graph = doc["call_graph"]
        assert set(graph["counts"]) == {"nodes", "edges", "external"}
        assert isinstance(doc["taint_edges"], list)


class TestSelfLint:
    def test_src_repro_is_clean(self, capsys):
        """The acceptance gate: the merged tree lints clean."""
        assert main(["lint", SRC_REPRO]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_checked_in_baseline_is_empty(self):
        with open(
            os.path.join(REPO_ROOT, "lint-baseline.json"), encoding="utf-8"
        ) as fh:
            doc = json.load(fh)
        assert doc["format_version"] == 1
        assert doc["entries"] == []
