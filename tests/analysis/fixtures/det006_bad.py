"""DET006 positive fixture: set-valued argument into float accumulation."""


def fold(weights):
    total = 0.0
    for w in weights:
        total += w
    return total


def caller_variable():
    degrees = {0.5, 1.5, 2.5}
    return fold(degrees)


def caller_literal():
    return fold({1.0, 2.0})
