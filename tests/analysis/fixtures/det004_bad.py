"""DET004 positive fixture: one rng stream shared across sibling scopes."""

from repro.utils.rng import make_rng


def build_cluster(seed):
    rng = make_rng(seed)
    first = ShardWorker(rng)
    second = ShardWorker(rng)
    return first, second


def build_fleet(seed, n):
    rng = make_rng(seed)
    workers = []
    for _ in range(n):
        workers.append(MachineScope(rng))
    return workers
