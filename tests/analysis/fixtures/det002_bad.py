"""DET002 fixture: unseeded constructions and global-state draws."""

import random

import numpy as np
from numpy.random import default_rng


def build():
    a = np.random.default_rng()
    b = default_rng()
    c = np.random.RandomState()
    d = random.Random()
    return a, b, c, d


def draw():
    x = np.random.normal(0.0, 1.0)
    y = np.random.randint(10)
    np.random.shuffle([1, 2, 3])
    return x, y
