"""ERR001 fixture: narrow handlers, and broad ones that re-raise."""


class FixtureError(Exception):
    pass


def narrow(work):
    try:
        return work()
    except (ValueError, KeyError):
        return None


def broad_but_reraises(work):
    try:
        return work()
    except Exception as exc:
        raise FixtureError("wrapped") from exc


def broad_conditional_reraise(work):
    try:
        return work()
    except Exception:
        if True:
            raise
