"""API001 fixture: the seed is always part of the public API.

Linted with a module override placing it under ``repro.partition``.
"""

from repro.utils.rng import make_rng


def shuffle_edges(edges, seed):
    rng = make_rng(seed)
    return rng.permutation(edges)


def shuffle_with(edges, rng):
    return rng.permutation(edges)


class FixturePartitioner:
    def __init__(self, seed=0):
        self.seed = seed

    def partition(self, edges):
        rng = make_rng(self.seed)  # threads the seed via self
        return rng.permutation(edges)


def _private_helper(edges):
    rng = make_rng(1234)  # private: the caller carries the contract
    return rng.permutation(edges)
