"""STORE002 positive fixture (linted as a repro.store module)."""


def bump_meta(conn):
    conn.execute("UPDATE store_meta SET value = '2' WHERE key = 'v'")


class Maintenance:
    def purge(self, conn, key):
        conn.execute("DELETE FROM summaries WHERE key = ?", (key,))
