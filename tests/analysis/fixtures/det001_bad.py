"""DET001 fixture: every call below reads wall-clock or entropy state."""

import datetime
import os
import random
import time
import uuid
from time import perf_counter


def stamp():
    started = time.time()
    mono = time.monotonic()
    precise = perf_counter()
    today = datetime.datetime.now()
    run_id = uuid.uuid4()
    token = os.urandom(16)
    pick = random.randint(0, 10)
    return started, mono, precise, today, run_id, token, pick
