"""DET003 fixture: ordered iteration and order-insensitive consumers.

Linted with a module override placing it under ``repro.partition``.
"""


def accumulate(times):
    total = 0.0
    for _name, t in sorted(times.items()):  # ordered
        total += t * total
    listed = [v for v in sorted(times.values())]
    biggest = max(times.values())  # order-insensitive reducer
    everything = sum(v for v in times.values())  # genexp into sum()
    present = {k for k in times.keys()}  # set comp: unordered result
    return total, listed, biggest, everything, present
