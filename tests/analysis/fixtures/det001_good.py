"""DET001 fixture: deterministic stand-ins for every banned pattern."""

import random


class SimulatedClock:
    def __init__(self):
        self._ticks = 0

    def advance(self):
        self._ticks += 1
        return self._ticks


def stamp(clock, seed):
    started = clock.advance()
    rng = random.Random(seed)  # seeded instances are DET002's concern
    return started, rng.randint(0, 10)
