"""OBS001 fixture: an obs module importing the state it observes.

Linted with a module override placing it under ``repro.obs``.
"""

import repro.engine.runtime
from repro.partition import make_partitioner
from repro.core.ccr import CCRPool


def poke():
    return repro.engine.runtime, make_partitioner, CCRPool
