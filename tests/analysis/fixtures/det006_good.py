"""DET006 negative fixture: order established, or order-insensitive sum."""


def fold(weights):
    total = 0.0
    for w in weights:
        total += w
    return total


def count(items):
    n = 0
    for _ in items:
        n += 1
    return n


def caller_sorted():
    degrees = {0.5, 1.5, 2.5}
    return fold(sorted(degrees))


def caller_int_accumulator():
    # Integer accumulation is order-insensitive.
    return count({1, 2, 3})


def caller_list():
    return fold([0.5, 1.5])
