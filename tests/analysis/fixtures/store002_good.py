"""STORE002 negative fixture: writes live in the helper, reads anywhere."""


class Store:
    def _write(self, conn, key, payload):
        conn.execute(
            "INSERT INTO summaries (key, payload) VALUES (?, ?)",
            (key, payload),
        )

    def get(self, conn, key):
        return conn.execute(
            "SELECT payload FROM summaries WHERE key = ?", (key,)
        ).fetchone()
