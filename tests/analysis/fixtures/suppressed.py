"""Suppression fixture: violations justified inline or file-wide."""

import time


def timed(work):
    started = time.time()  # repro: allow[DET001]
    result = work()
    return result, started


def timed_wildcard(work):
    started = time.monotonic()  # repro: allow[*]
    return work(), started
