"""STORE001 positive fixture (linted as a non-store repro module)."""

import sqlite3


def read_rows(path):
    conn = sqlite3.connect(path)
    rows = conn.execute("SELECT payload FROM summaries").fetchall()
    conn.close()
    return rows
