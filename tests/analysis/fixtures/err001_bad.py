"""ERR001 fixture: handlers that can swallow ConvergenceError."""


def swallow_everything(work):
    try:
        return work()
    except:  # noqa: E722  (that is the point of the fixture)
        return None


def swallow_broad(work):
    try:
        return work()
    except Exception:
        return None


def swallow_tuple(work):
    try:
        return work()
    except (ValueError, Exception) as exc:
        return exc
