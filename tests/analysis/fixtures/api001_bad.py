"""API001 fixture: randomized public entry points hiding the seed.

Linted with a module override placing it under ``repro.partition``.
"""

import numpy as np

from repro.utils.rng import make_rng


def shuffle_edges(edges):
    rng = make_rng(42)  # hard-coded seed: caller cannot replay
    return rng.permutation(edges)


class FixturePartitioner:
    def __init__(self, chunk_size=64):
        self.chunk_size = chunk_size
        self.rng_source = np.random.default_rng(7)
