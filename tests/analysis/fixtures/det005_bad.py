"""DET005 positive fixture: accepted seeds that provably go nowhere."""


def run_trial(seed):
    # Forwards the seed into a helper that drops it: the finding's trace
    # crosses the call boundary.
    return _sink(seed)


def _sink(seed):
    return 42


def ignored(seed):
    # Never read at all: single-hop proof.
    return 7
