"""ERR002 negative fixture: typed errors re-raised or at least examined."""

from repro.errors import ConvergenceError, StoreError


def load(path, log):
    try:
        return open(path).read()
    except StoreError as exc:
        log(exc)
        return None


def solve(x):
    try:
        return x
    except ConvergenceError:
        raise


def convert(x):
    try:
        return int(x)
    except ValueError:
        # Not a repro typed error; ERR002 does not police stdlib types.
        return 0
