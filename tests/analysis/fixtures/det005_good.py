"""DET005 negative fixture: every accepted seed is threaded or escapes."""

from repro.utils.rng import make_rng


def seeded(seed):
    rng = make_rng(seed)
    return rng.random()


def forwarded(seed):
    return seeded(seed)


def recorded(seed):
    # Passed to code outside the project: assumed consumed.
    print(seed)
    return 0


class Runner:
    def __init__(self, seed):
        self.seed = seed  # threaded via instance state


def _private_drop(seed):
    # Private helpers are exempt; their public callers carry the contract.
    return 0
