"""DET002 fixture: every generator is explicitly seeded."""

import random

import numpy as np


def build(seed):
    a = np.random.default_rng(seed)
    b = np.random.default_rng(seed=seed)
    c = np.random.RandomState(seed)
    d = random.Random(seed)
    return a, b, c, d


def draw(rng):
    return rng.normal(0.0, 1.0)
