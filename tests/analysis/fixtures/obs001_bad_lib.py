"""OBS001 fixture: library code binding observability internals.

Linted with a module override placing it under ``repro.partition``.
"""

import repro.obs.span
from repro.obs.metrics import MetricsRegistry
from repro.obs import artifacts


def poke():
    return repro.obs.span, MetricsRegistry, artifacts
