"""FED001 positive fixture (linted as a repro.federation module)."""


class ShardJournal:
    def __init__(self):
        self._entries = []

    def append(self, entry):
        self._entries.append(entry)

    def rewrite(self, index, entry):
        self._entries[index] = entry

    def compact(self):
        self._entries.clear()
