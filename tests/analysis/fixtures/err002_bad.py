"""ERR002 positive fixture (linted as a repro module)."""

from repro import errors
from repro.errors import ConvergenceError, StoreError


def load(path):
    try:
        return open(path).read()
    except StoreError:
        return None


def solve(x):
    try:
        return x
    except ConvergenceError as exc:
        return None


def fetch(key):
    try:
        return key
    except errors.StoreSchemaError:
        return None
