"""FED001 negative fixture: the journal only ever grows."""


class ShardJournal:
    def __init__(self):
        self._entries = []

    def append(self, entry):
        self._entries.append(entry)

    def replay(self):
        return list(self._entries)


class Ledger:
    def __init__(self):
        self.records = []

    def reset(self):
        # Not a journal entry list; FED001 does not apply.
        self.records.clear()
