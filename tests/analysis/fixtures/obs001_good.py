"""OBS001 fixture: library code using the curated obs surface.

Linted with a module override placing it under ``repro.partition``.
"""

from repro.obs import context as obs
from repro.obs import Observer


def instrumented(work):
    with obs.span("fixture/work"):
        result = work()
    if obs.is_enabled():
        obs.counter_add("fixture.calls", 1.0)
    return result, Observer
