# repro: allow-file[DET001]
"""File-wide suppression fixture: DET001 is allowed everywhere here."""

import time


def first(work):
    return work(), time.time()


def second(work):
    return work(), time.monotonic()
