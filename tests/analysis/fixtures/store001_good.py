"""STORE001 negative fixture: goes through the store's public surface."""

from repro.store import SummaryStore


def read_rows(path):
    store = SummaryStore.open(path)
    try:
        return store.stats()
    finally:
        store.close()
