"""DET004 negative fixture: one child stream per scope, single-scope use."""

from repro.utils.rng import make_rng, spawn_rngs


def build_pair(seed):
    rng_a, rng_b = spawn_rngs(seed, 2)
    return ShardWorker(rng_a), ShardWorker(rng_b)


def build_one(seed):
    rng = make_rng(seed)
    return ShardWorker(rng)


def build_fleet(seed, n):
    rngs = spawn_rngs(seed, n)
    return [ShardWorker(child) for child in rngs]
