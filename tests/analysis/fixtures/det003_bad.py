"""DET003 fixture: unordered view iteration where order can leak.

Linted with a module override placing it under ``repro.partition``.
"""


def accumulate(times):
    total = 0.0
    for _name, t in times.items():  # for loop over .items()
        total += t * total
    listed = [v for v in times.values()]  # list comp over .values()
    keyed = {k: 1 for k in times.keys()}  # dict comp over .keys()
    joined = ",".join(k for k in times.keys())  # genexp, order-sensitive sink
    return total, listed, keyed, joined
