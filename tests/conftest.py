"""Shared fixtures: small deterministic graphs and clusters.

Tests run at tiny scales so the whole suite stays fast on one core;
experiment-level behaviour at realistic scales is exercised by the
benchmark suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineSpec
from repro.cluster.perfmodel import PerformanceModel
from repro.graph.digraph import DiGraph
from repro.powerlaw.generator import generate_power_law_graph


@pytest.fixture(autouse=True)
def _kernel_isolation():
    """Per-test kernel-state hygiene: empty caches, no store, default
    backend."""
    from repro.kernels.backend import default_backend, set_backend
    from repro.kernels.cache import clear_all_caches, detach_store

    detach_store()
    clear_all_caches()
    set_backend(default_backend())
    yield
    detach_store()
    clear_all_caches()


@pytest.fixture
def tiny_graph() -> DiGraph:
    """Seven edges over five vertices, with a parallel edge and a hub."""
    edges = [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 0), (0, 1)]
    return DiGraph.from_edges(edges, num_vertices=5)


@pytest.fixture
def ring_graph() -> DiGraph:
    """A directed 8-cycle: one component, no triangles, 2-colourable."""
    n = 8
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return DiGraph(n, src, dst)


@pytest.fixture
def star_graph() -> DiGraph:
    """Hub 0 pointing at 9 leaves: extreme skew for partition tests."""
    n = 10
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return DiGraph(n, src, dst)


@pytest.fixture
def two_components_graph() -> DiGraph:
    """Two disjoint triangles (vertices 0-2 and 3-5)."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    return DiGraph.from_edges(edges, num_vertices=6)


@pytest.fixture(scope="session")
def powerlaw_graph() -> DiGraph:
    """A 2 000-vertex power-law graph (session-cached: generation is pure)."""
    return generate_power_law_graph(num_vertices=2000, alpha=2.1, seed=42)


@pytest.fixture(scope="session")
def powerlaw_graph_large() -> DiGraph:
    """A denser 4 000-vertex power-law graph for engine/partition tests."""
    return generate_power_law_graph(num_vertices=4000, alpha=1.95, seed=7)


@pytest.fixture
def hetero_pair() -> Cluster:
    """A slow and a fast machine, 1:2 compute and memory."""
    slow = MachineSpec("slow", hw_threads=4, freq_ghz=2.0, mem_bw_gbs=8.0,
                       llc_mb=4.0)
    fast = MachineSpec("fast", hw_threads=6, freq_ghz=4.0, mem_bw_gbs=16.0,
                       llc_mb=8.0)
    return Cluster([slow, fast])


@pytest.fixture
def case1_like_cluster() -> Cluster:
    """Four EC2 machines (2x m4.2xlarge + 2x c4.2xlarge), unit scale."""
    return Cluster(
        [get_machine("m4.2xlarge")] * 2 + [get_machine("c4.2xlarge")] * 2,
        perf=PerformanceModel(model_scale=1.0),
    )
