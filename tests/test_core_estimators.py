"""Unit tests for repro.core.estimators."""

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.core.ccr import CCRPool, CCRTable
from repro.core.estimators import (
    OracleEstimator,
    ProxyCCREstimator,
    ThreadCountEstimator,
    UniformEstimator,
)
from repro.core.profiler import ProxyProfiler
from repro.core.proxy import ProxySet


@pytest.fixture(scope="module")
def cluster():
    return Cluster(
        [get_machine("c4.xlarge"), get_machine("c4.2xlarge")],
        perf=PerformanceModel(model_scale=0.001),
    )


def small_estimator():
    return ProxyCCREstimator(
        profiler=ProxyProfiler(proxies=ProxySet(num_vertices=1200, seed=77))
    )


class TestUniform:
    def test_equal_shares(self, cluster):
        w = UniformEstimator().weights(cluster, "pagerank")
        assert np.allclose(w, 0.5)


class TestThreadCount:
    def test_prior_work_ratio(self, cluster):
        """2 vs 6 computing threads -> 1:3 (the paper's example)."""
        w = ThreadCountEstimator().weights(cluster, "pagerank")
        assert w[1] / w[0] == pytest.approx(3.0)

    def test_app_independent(self, cluster):
        est = ThreadCountEstimator()
        a = est.weights(cluster, "pagerank")
        b = est.weights(cluster, "triangle_count")
        assert np.array_equal(a, b)


class TestProxyCCR:
    def test_lazy_profiling_populates_pool(self, cluster):
        est = small_estimator()
        assert "pagerank" not in est.pool
        est.weights(cluster, "pagerank")
        assert "pagerank" in est.pool

    def test_pool_reused_across_calls(self, cluster):
        est = small_estimator()
        est.weights(cluster, "pagerank")
        table = est.pool.get("pagerank")
        est.weights(cluster, "pagerank")
        assert est.pool.get("pagerank") is table

    def test_pool_invalidated_on_new_machine_type(self, cluster):
        """Re-profiling happens only when machine types change (Sec. III-B)."""
        est = small_estimator()
        est.weights(cluster, "pagerank")
        other = Cluster(
            [get_machine("c4.xlarge"), get_machine("m4.2xlarge")],
            perf=cluster.perf,
        )
        est.weights(other, "pagerank")
        with pytest.raises(Exception):
            est.pool.get("pagerank").ratio("c4.2xlarge")

    def test_pool_kept_when_composition_changes_within_types(self, cluster):
        est = small_estimator()
        est.weights(cluster, "pagerank")
        table = est.pool.get("pagerank")
        more = Cluster(
            [get_machine("c4.xlarge")] * 3 + [get_machine("c4.2xlarge")],
            perf=cluster.perf,
        )
        w = est.weights(more, "pagerank")
        assert est.pool.get("pagerank") is table
        assert w.size == 4

    def test_preloaded_pool_used_without_profiling(self, cluster):
        pool = CCRPool()
        pool.add(CCRTable("pagerank", {"c4.xlarge": 1.0, "c4.2xlarge": 4.0}))
        est = ProxyCCREstimator(pool=pool)
        est._pool_signature = est._signature(cluster)
        w = est.weights(cluster, "pagerank")
        assert w[1] / w[0] == pytest.approx(4.0)

    def test_weights_favor_faster_machine(self, cluster):
        w = small_estimator().weights(cluster, "pagerank")
        assert w[1] > w[0]


class TestOracle:
    def test_requires_graph(self, cluster):
        with pytest.raises(ValueError):
            OracleEstimator().weights(cluster, "pagerank")

    def test_weights_from_real_graph(self, cluster, powerlaw_graph):
        w = OracleEstimator().weights(cluster, "pagerank", powerlaw_graph)
        assert w.sum() == pytest.approx(1.0)
        assert w[1] > w[0]
