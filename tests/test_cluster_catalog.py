"""Unit tests for repro.cluster.catalog (Table I)."""

import pytest

from repro.cluster.catalog import (
    CATALOG,
    EC2_CATALOG,
    LOCAL_CATALOG,
    get_machine,
    machine_names,
    tiny_server,
    xeon_large,
    xeon_small,
)
from repro.errors import ClusterError


class TestTable1Fidelity:
    """The catalog matches the published Table I exactly."""

    @pytest.mark.parametrize(
        "name,hw,ct,cost",
        [
            ("c4.xlarge", 4, 2, 0.209),
            ("c4.2xlarge", 8, 6, 0.419),
            ("m4.2xlarge", 8, 6, 0.479),
            ("r3.2xlarge", 8, 6, 0.665),
            ("c4.4xlarge", 16, 14, 0.838),
            ("c4.8xlarge", 36, 34, 1.675),
        ],
    )
    def test_ec2_rows(self, name, hw, ct, cost):
        m = EC2_CATALOG[name]
        assert m.hw_threads == hw
        assert m.compute_threads == ct
        assert m.cost_per_hour == cost
        assert m.kind == "virtual"

    def test_local_servers_unpriced_physical(self):
        for m in LOCAL_CATALOG.values():
            assert m.cost_per_hour is None
            assert m.kind == "physical"

    def test_xeon_s_row(self):
        m = LOCAL_CATALOG["xeon_server_s"]
        assert m.hw_threads == 4 and m.compute_threads == 2

    def test_xeon_l_row(self):
        m = LOCAL_CATALOG["xeon_server_l"]
        assert m.compute_threads == 12


class TestCalibrationShape:
    def test_bandwidth_sublinear_in_size(self):
        """Per-thread bandwidth shrinks up the c4 ladder (saturation)."""
        per_thread = [
            EC2_CATALOG[n].mem_bw_gbs / EC2_CATALOG[n].hw_threads
            for n in ("c4.xlarge", "c4.2xlarge", "c4.4xlarge", "c4.8xlarge")
        ]
        assert per_thread[0] > per_thread[-1]

    def test_8xlarge_has_both_sockets_of_llc(self):
        assert EC2_CATALOG["c4.8xlarge"].llc_mb > 3 * EC2_CATALOG["c4.4xlarge"].llc_mb

    def test_c4_faster_clock_than_m4(self):
        assert EC2_CATALOG["c4.2xlarge"].freq_ghz > EC2_CATALOG["m4.2xlarge"].freq_ghz


class TestLookup:
    def test_get_machine(self):
        assert get_machine("c4.xlarge").name == "c4.xlarge"

    def test_unknown_machine(self):
        with pytest.raises(ClusterError, match="unknown machine"):
            get_machine("z9.mega")

    def test_machine_names_cover_catalog(self):
        assert set(machine_names()) == set(CATALOG)


class TestHelpers:
    def test_xeon_small_default(self):
        assert xeon_small().name == "xeon_server_s"

    def test_xeon_large_frequency_emulated(self):
        m = xeon_large(freq_ghz=2.0)
        assert m.freq_ghz == 2.0

    def test_tiny_server_weaker_than_source(self):
        tiny = tiny_server()
        s = xeon_small()
        assert tiny.freq_ghz == 1.8
        assert tiny.mem_bw_gbs < s.mem_bw_gbs * 0.5
        assert tiny.hw_threads == s.hw_threads
