"""Unit tests for repro.powerlaw.validation."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.powerlaw.generator import generate_power_law_graph
from repro.powerlaw.validation import (
    fit_alpha_from_graph,
    loglog_slope,
    validate_power_law,
)


class TestFitAlphaFromGraph:
    @pytest.mark.parametrize("alpha", [1.95, 2.1, 2.3])
    def test_recovers_generator_alpha(self, alpha):
        g = generate_power_law_graph(8000, alpha, seed=13)
        assert fit_alpha_from_graph(g) == pytest.approx(alpha, abs=0.12)

    def test_denser_graph_lower_alpha(self):
        dense = generate_power_law_graph(4000, 1.9, seed=1)
        sparse = generate_power_law_graph(4000, 2.4, seed=1)
        assert fit_alpha_from_graph(dense) < fit_alpha_from_graph(sparse)


class TestLoglogSlope:
    def test_negative_slope_on_power_law(self, powerlaw_graph):
        slope, r2 = loglog_slope(powerlaw_graph)
        assert slope < -0.5
        assert r2 > 0.9

    def test_ccdf_exponent_relation(self):
        g = generate_power_law_graph(10_000, 2.1, seed=21)
        slope, _ = loglog_slope(g)
        assert 1.0 - slope == pytest.approx(2.1, abs=0.25)

    def test_too_few_degrees_raises(self):
        g = DiGraph.from_edges([(0, 1)], num_vertices=2)
        with pytest.raises(GraphError, match="three distinct"):
            loglog_slope(g)


class TestValidatePowerLaw:
    def test_estimators_consistent_on_generated(self):
        g = generate_power_law_graph(8000, 2.1, seed=4)
        fit = validate_power_law(g)
        assert fit.consistent()
        assert fit.r_squared > 0.95

    def test_fields(self, powerlaw_graph):
        fit = validate_power_law(powerlaw_graph)
        assert fit.average_degree == pytest.approx(
            powerlaw_graph.num_edges / powerlaw_graph.num_vertices
        )
        assert fit.alpha_moment > 1.0
        assert fit.alpha_slope > 1.0

    def test_consistent_tolerance(self):
        g = generate_power_law_graph(5000, 2.0, seed=2)
        fit = validate_power_law(g)
        assert fit.consistent(tol=1.0)
        assert not fit.consistent(tol=0.0)
