"""Property-based tests (hypothesis) on core invariants.

These sweep randomised inputs over the load-bearing data structures and
algorithms: the graph container, the power-law machinery (Eq. 3-7), the
hash/partition layer, the CCR metric (Eq. 1) and the work-profile algebra.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.perfmodel import PerformanceModel, WorkProfile
from repro.core.ccr import ccr_from_times
from repro.graph.digraph import DiGraph
from repro.partition import RandomHashPartitioner, normalize_weights
from repro.powerlaw.alpha_solver import expected_degree, solve_alpha
from repro.powerlaw.distribution import PowerLawDistribution
from repro.powerlaw.generator import generate_power_law_graph
from repro.utils.rng import hash_edges, hash_to_unit, mix64

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #

alphas = st.floats(min_value=1.2, max_value=3.5, allow_nan=False)
small_ints = st.integers(min_value=2, max_value=400)


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    m = draw(st.integers(min_value=0, max_value=200))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


# ---------------------------------------------------------------------- #
# Graph container
# ---------------------------------------------------------------------- #


class TestDiGraphProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, data):
        n, src, dst = data
        g = DiGraph(n, src, dst)
        assert g.out_degrees.sum() == g.num_edges
        assert g.in_degrees.sum() == g.num_edges
        assert g.degrees.sum() == 2 * g.num_edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_reverse_preserves_edge_multiset(self, data):
        n, src, dst = data
        g = DiGraph(n, src, dst)
        r = g.reverse()
        fwd = sorted(zip(src.tolist(), dst.tolist()))
        back = sorted(zip(r.dst.tolist(), r.src.tolist()))
        assert fwd == back

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_deduplicate_idempotent(self, data):
        n, src, dst = data
        d1 = DiGraph(n, src, dst).deduplicate()
        d2 = d1.deduplicate()
        assert d1 == d2


# ---------------------------------------------------------------------- #
# Power law (Eq. 3-7)
# ---------------------------------------------------------------------- #


class TestPowerLawProperties:
    @given(alphas, st.integers(min_value=2, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_pmf_normalised_and_decreasing(self, alpha, d):
        dist = PowerLawDistribution(alpha, d)
        assert dist.pmf.sum() == pytest.approx(1.0)
        assert np.all(np.diff(dist.pmf) <= 0)

    @given(alphas, st.integers(min_value=2, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_mean_within_support(self, alpha, d):
        dist = PowerLawDistribution(alpha, d)
        assert 1.0 <= dist.mean <= d

    @given(alphas, st.integers(min_value=10, max_value=3000))
    @settings(max_examples=40, deadline=None)
    def test_alpha_solver_roundtrip(self, alpha, d):
        """solve_alpha inverts expected_degree across the whole domain."""
        target = expected_degree(alpha, d)
        recovered = solve_alpha(target, d)
        assert recovered == pytest.approx(alpha, abs=1e-4)

    @given(st.integers(min_value=2, max_value=300), alphas,
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_generator_valid_graph(self, n, alpha, seed):
        g = generate_power_law_graph(n, alpha, seed=seed)
        src, dst = g.edges()
        assert not np.any(src == dst)  # no self loops
        assert g.out_degrees.min() >= 1  # every vertex emits
        assert src.min(initial=0) >= 0 and dst.max(initial=0) < n


# ---------------------------------------------------------------------- #
# Hashing and partitioning
# ---------------------------------------------------------------------- #


class TestHashProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**62), min_size=1,
                    max_size=200), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_mix64_deterministic_pure(self, values, seed):
        x = np.array(values, dtype=np.int64)
        assert np.array_equal(mix64(x, seed=seed), mix64(x, seed=seed))

    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_unit_interval(self, u, v):
        h = hash_edges(np.array([u]), np.array([v]))
        x = hash_to_unit(h)[0]
        assert 0.0 <= x < 1.0


class TestPartitionProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.floats(min_value=0.05, max_value=10.0), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_hash_total_and_range(self, extra, weights, seed):
        m = len(weights)
        g = generate_power_law_graph(200 + extra, 2.0, seed=seed % 1000)
        r = RandomHashPartitioner(seed=seed).partition(g, m, weights=weights)
        assert r.assignment.size == g.num_edges
        if g.num_edges:
            assert 0 <= r.assignment.min() and r.assignment.max() < m

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                    min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_normalize_weights_sums_to_one(self, weights):
        w = normalize_weights(weights, len(weights))
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w > 0)


# ---------------------------------------------------------------------- #
# CCR (Eq. 1)
# ---------------------------------------------------------------------- #


class TestCcrProperties:
    @given(st.dictionaries(st.text(min_size=1, max_size=6),
                           st.floats(min_value=1e-3, max_value=1e3),
                           min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_eq1_invariants(self, times):
        ccr = ccr_from_times(times)
        values = list(ccr.values())
        # slowest machine anchors at exactly 1; everyone else >= 1
        assert min(values) == pytest.approx(1.0)
        assert all(v >= 1.0 - 1e-12 for v in values)

    @given(st.dictionaries(st.text(min_size=1, max_size=6),
                           st.floats(min_value=1e-3, max_value=1e3),
                           min_size=1, max_size=8),
           st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_graph_size_invariance(self, times, factor):
        """Graph size only scales runtimes, never the ratios (Sec. II-A)."""
        scaled = {k: v * factor for k, v in times.items()}
        a, b = ccr_from_times(times), ccr_from_times(scaled)
        for k in times:
            assert a[k] == pytest.approx(b[k], rel=1e-9)


# ---------------------------------------------------------------------- #
# Work-profile algebra and the machine model
# ---------------------------------------------------------------------- #

profiles = st.builds(
    WorkProfile,
    flops=st.floats(min_value=0, max_value=1e12),
    serial_flops=st.floats(min_value=0, max_value=1e9),
    streaming_bytes=st.floats(min_value=0, max_value=1e12),
    cacheable_bytes=st.floats(min_value=0, max_value=1e12),
    working_set_mb=st.floats(min_value=0, max_value=1e4),
)


class TestWorkProfileProperties:
    @given(profiles, profiles)
    @settings(max_examples=60, deadline=None)
    def test_addition_commutative(self, a, b):
        assert (a + b) == (b + a)

    @given(profiles, profiles, profiles)
    @settings(max_examples=40, deadline=None)
    def test_addition_associative_in_extensives(self, a, b, c):
        x = (a + b) + c
        y = a + (b + c)
        assert x.flops == pytest.approx(y.flops)
        assert x.streaming_bytes == pytest.approx(y.streaming_bytes)
        assert x.working_set_mb == y.working_set_mb

    @given(profiles)
    @settings(max_examples=60, deadline=None)
    def test_time_monotone_in_threads(self, work):
        from repro.cluster.machine import MachineSpec

        pm = PerformanceModel()
        m = MachineSpec("m", hw_threads=40, freq_ghz=2.0)
        t_few = pm.execution_time(m, work, threads=2)
        t_many = pm.execution_time(m, work, threads=32)
        assert t_many <= t_few + 1e-12

    @given(profiles, st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_scaled_linear(self, work, factor):
        s = work.scaled(factor)
        assert s.flops == pytest.approx(work.flops * factor)
        assert s.cacheable_bytes == pytest.approx(work.cacheable_bytes * factor)
