"""Unit tests for repro.cluster.machine."""

import pytest

from repro.cluster.machine import COMM_RESERVED_THREADS, MachineSpec
from repro.errors import ClusterError


def make(name="m", **kw):
    defaults = dict(hw_threads=8, freq_ghz=2.5)
    defaults.update(kw)
    return MachineSpec(name, **defaults)


class TestComputeThreads:
    def test_reserves_two_for_communication(self):
        assert make(hw_threads=8).compute_threads == 6

    def test_paper_example(self):
        """Section III-B: 4 HW -> 2, 8 HW -> 6, i.e. a 1:3 ratio."""
        assert make(hw_threads=4).compute_threads == 2
        assert COMM_RESERVED_THREADS == 2

    def test_floor_of_one(self):
        assert make(hw_threads=1).compute_threads == 1
        assert make(hw_threads=2).compute_threads == 1


class TestValidation:
    def test_zero_threads(self):
        with pytest.raises(ClusterError):
            make(hw_threads=0)

    @pytest.mark.parametrize("field", ["freq_ghz", "ipc", "mem_bw_gbs", "llc_mb"])
    def test_positive_fields(self, field):
        with pytest.raises(ClusterError, match=field):
            make(**{field: 0})

    def test_negative_power(self):
        with pytest.raises(ClusterError):
            make(idle_watts=-1)

    def test_nonpositive_cost(self):
        with pytest.raises(ClusterError):
            make(cost_per_hour=0.0)

    def test_bad_kind(self):
        with pytest.raises(ClusterError, match="kind"):
            make(kind="quantum")

    def test_frozen(self):
        m = make()
        with pytest.raises(Exception):
            m.freq_ghz = 9.9


class TestPeakGops:
    def test_formula(self):
        m = make(hw_threads=8, freq_ghz=2.0, ipc=1.5)
        assert m.peak_gops == pytest.approx(6 * 2.0 * 1.5)


class TestScaledFrequency:
    def test_scales_frequency_and_bandwidth(self):
        m = make(freq_ghz=2.4, mem_bw_gbs=12.0)
        t = m.scaled_frequency(1.2)
        assert t.freq_ghz == 1.2
        assert t.mem_bw_gbs == pytest.approx(6.0)

    def test_explicit_bandwidth_scale(self):
        m = make(freq_ghz=2.0, mem_bw_gbs=10.0)
        t = m.scaled_frequency(1.0, mem_bw_scale=0.3)
        assert t.mem_bw_gbs == pytest.approx(3.0)

    def test_dynamic_power_scales(self):
        m = make(freq_ghz=2.0, dyn_watts_per_thread=4.0)
        assert m.scaled_frequency(1.0).dyn_watts_per_thread == pytest.approx(2.0)

    def test_name_records_frequency(self):
        assert "1.8GHz" in make(freq_ghz=2.4).scaled_frequency(1.8).name

    def test_threads_unchanged(self):
        m = make(hw_threads=8)
        assert m.scaled_frequency(1.0).hw_threads == 8

    def test_invalid_frequency(self):
        with pytest.raises(ClusterError):
            make().scaled_frequency(0.0)

    def test_invalid_scale(self):
        with pytest.raises(ClusterError):
            make().scaled_frequency(1.0, mem_bw_scale=-1)
