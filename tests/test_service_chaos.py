"""Chaos soak: a faulty 60-job stream obeys the service invariants.

The stream mixes deadlines, seeded crash faults and scripted hot-machine
crashes under a tight queue, then the replay is checked against the
ledger invariants the service guarantees:

* no job is lost — every submission gets exactly one terminal record;
* the simulated clock is monotone and the single server never overlaps
  two runs;
* time/energy conservation — the summary totals are exactly the sums of
  the per-record charges, and jobs that never ran are charged nothing;
* two same-seed replays produce byte-identical traces.
"""

import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.faults.checkpoint import CheckpointPolicy, RetryPolicy
from repro.service import (
    JOB_STATUSES,
    BreakerPolicy,
    JobService,
    ServicePolicy,
    generate_workload,
)

NUM_JOBS = 60


@pytest.fixture(scope="module")
def soak():
    """One chaotic replay, shared by every invariant check below."""
    workload = generate_workload(
        NUM_JOBS,
        seed=13,
        mean_interarrival_s=0.05,
        deadline_fraction=0.25,
        fault_fraction=0.2,
        crash_rate=0.02,
        hot_machine=1,
        hot_fraction=0.1,
        hot_repeats=1,
    )
    cluster = Cluster(
        [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
        perf=PerformanceModel(model_scale=0.01),
    )

    def run():
        service = JobService(
            cluster,
            policy=ServicePolicy(max_queue_depth=4, max_attempts=2),
            breaker_policy=BreakerPolicy(failure_threshold=3, cooldown_s=1.0),
            checkpoint=CheckpointPolicy(interval=5, restart_seconds=0.05),
            engine_retry=RetryPolicy(max_retries=2, backoff_base_s=0.01),
        )
        return service.run_workload(workload)

    return workload, run(), run()


class TestNoJobLost:
    def test_every_submission_has_one_terminal_record(self, soak):
        workload, result, _ = soak
        assert len(result.records) == NUM_JOBS
        assert sorted(r.job_id for r in result.records) == sorted(
            j.job_id for j in workload.jobs
        )
        assert all(r.status in JOB_STATUSES for r in result.records)

    def test_statuses_partition_the_submissions(self, soak):
        _, result, _ = soak
        counts = result.by_status()
        assert sum(counts.values()) == NUM_JOBS
        summary = result.summary()
        assert summary["jobs_submitted"] == NUM_JOBS
        assert (
            summary["jobs_completed"] + summary["jobs_rejected"]
            + summary["jobs_deadline_exceeded"] + summary["jobs_failed"]
        ) == NUM_JOBS

    def test_chaos_actually_happened(self, soak):
        _, result, _ = soak
        counts = result.by_status()
        # The stream is tuned so every terminal path is exercised.
        assert counts["completed"] > 0
        assert counts["rejected"] > 0
        assert counts["deadline_exceeded"] > 0
        assert sum(r.crashes for r in result.records) > 0


class TestMonotoneClock:
    def test_per_job_times_ordered(self, soak):
        _, result, _ = soak
        for r in result.records:
            assert r.submit_s >= 0.0
            if r.start_s is not None:
                assert r.start_s >= r.submit_s
            if r.end_s is not None:
                assert r.end_s >= r.start_s

    def test_single_server_runs_never_overlap(self, soak):
        _, result, _ = soak
        ran = sorted(
            (r for r in result.records if r.start_s is not None),
            key=lambda r: r.start_s,
        )
        assert ran
        for prev, cur in zip(ran, ran[1:]):
            assert cur.start_s >= prev.end_s

    def test_makespan_covers_every_finish(self, soak):
        _, result, _ = soak
        last_end = max(
            r.end_s for r in result.records if r.end_s is not None
        )
        assert result.makespan_s == last_end


class TestConservation:
    def test_summary_totals_are_record_sums(self, soak):
        _, result, _ = soak
        summary = result.summary()
        assert summary["charged_seconds_total"] == sum(
            r.charged_seconds for r in result.records
        )
        assert summary["charged_energy_joules_total"] == sum(
            r.charged_energy_joules for r in result.records
        )
        assert summary["retry_backoff_seconds_total"] == sum(
            r.retries_backoff_s for r in result.records
        )

    def test_jobs_that_never_ran_cost_nothing(self, soak):
        _, result, _ = soak
        for r in result.records:
            if r.start_s is None or r.end_s == r.start_s:
                assert r.charged_seconds == 0.0
                assert r.charged_energy_joules == 0.0

    def test_charges_bounded_by_occupancy(self, soak):
        _, result, _ = soak
        for r in result.records:
            if r.end_s is not None and r.start_s is not None:
                occupancy = r.end_s - r.start_s
                assert r.charged_seconds <= occupancy + 1e-12
            assert r.charged_seconds >= 0.0
            assert r.charged_energy_joules >= 0.0


class TestReplayDeterminism:
    def test_two_same_seed_runs_are_byte_identical(self, soak):
        _, first, second = soak
        assert first.trace_json() == second.trace_json()

    def test_summaries_match_exactly(self, soak):
        _, first, second = soak
        assert first.summary() == second.summary()

    def test_breaker_histories_match(self, soak):
        _, first, second = soak
        assert first.breaker_events == second.breaker_events
        assert first.breaker_states == second.breaker_states
