"""Golden-trace regression suite.

Each fixture under ``tests/golden/`` is the canonical JSON of one
application's :class:`~repro.engine.trace.ExecutionTrace` on the fixed
golden configuration (see :mod:`repro.testing`).  Any drift in engine
semantics — partition placement, gather/apply work counting, sync volume,
convergence, result values — changes the bytes and fails here loudly.

If a change is *intentional*, regenerate with:

    PYTHONPATH=src python scripts/regen_golden_traces.py

and justify the refresh in the commit message.
"""

import json
import pathlib

import pytest

from repro.engine.trace import ExecutionTrace
from repro.errors import EngineError
from repro.testing import GOLDEN_APPS, golden_graph, golden_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

REGEN_HINT = (
    "Golden trace drifted for {app!r}.\n"
    "The engine now produces different work/communication/results on the "
    "fixed golden configuration.\n"
    "If this change is intentional, refresh the fixtures with:\n"
    "    PYTHONPATH=src python scripts/regen_golden_traces.py\n"
    "and explain the semantic change in the commit message."
)


@pytest.fixture(scope="module")
def graph():
    return golden_graph()


@pytest.mark.parametrize("app", GOLDEN_APPS)
class TestGoldenTraces:
    def test_fixture_exists(self, app, graph):
        path = GOLDEN_DIR / f"{app}.trace.json"
        assert path.exists(), (
            f"missing golden fixture {path.name}; generate it with "
            "scripts/regen_golden_traces.py"
        )

    def test_trace_matches_fixture_bytes(self, app, graph):
        path = GOLDEN_DIR / f"{app}.trace.json"
        expected = path.read_text().rstrip("\n")
        actual = golden_trace(app, graph=graph).canonical_json()
        assert actual == expected, REGEN_HINT.format(app=app)

    def test_fixture_round_trips(self, app, graph):
        """Deserialising a fixture reproduces its bytes exactly."""
        raw = (GOLDEN_DIR / f"{app}.trace.json").read_text().rstrip("\n")
        trace = ExecutionTrace.from_jsonable(json.loads(raw))
        assert trace.canonical_json() == raw
        assert trace.app == app
        assert trace.num_machines == 2
        assert trace.num_supersteps > 0


def test_unknown_format_version_rejected():
    with pytest.raises(EngineError, match="format"):
        ExecutionTrace.from_jsonable(
            {"format_version": 999, "app": "x", "num_machines": 1}
        )
