"""Unit tests for repro.engine.trace and repro.engine.report."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkModel
from repro.cluster.perfmodel import PerformanceModel, WorkProfile
from repro.engine.report import simulate_execution
from repro.engine.trace import ExecutionTrace, MachinePhase, SuperstepTrace
from repro.errors import EngineError


def phase(flops=1e6, comm=0.0):
    return MachinePhase(work=WorkProfile(flops=flops), comm_bytes=comm)


def two_machine_cluster(slow_ghz=1.0, fast_ghz=2.0):
    # hw_threads=6 -> 4 compute threads after the communication reserve.
    slow = MachineSpec("slow", hw_threads=6, freq_ghz=slow_ghz,
                       idle_watts=10, dyn_watts_per_thread=5)
    fast = MachineSpec("fast", hw_threads=6, freq_ghz=fast_ghz,
                       idle_watts=10, dyn_watts_per_thread=5)
    return Cluster([slow, fast], perf=PerformanceModel(efficiency_decay=0.0))


class TestTrace:
    def test_append_and_counts(self):
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(SuperstepTrace(phases=[phase(), phase()]))
        assert t.num_supersteps == 1

    def test_machine_count_mismatch(self):
        t = ExecutionTrace(app="x", num_machines=2)
        with pytest.raises(EngineError):
            t.append(SuperstepTrace(phases=[phase()]))

    def test_total_work_aggregates(self):
        t = ExecutionTrace(app="x", num_machines=1)
        t.append(SuperstepTrace(phases=[phase(flops=1.0)]))
        t.append(SuperstepTrace(phases=[phase(flops=2.0)]))
        assert t.total_work()[0].flops == pytest.approx(3.0)

    def test_total_comm_bytes(self):
        t = ExecutionTrace(app="x", num_machines=1)
        t.append(SuperstepTrace(phases=[phase(comm=5.0)]))
        assert t.total_comm_bytes() == 5.0

    def test_empty_superstep_rejected(self):
        with pytest.raises(EngineError):
            SuperstepTrace(phases=[])

    def test_negative_comm_rejected(self):
        with pytest.raises(EngineError):
            MachinePhase(work=WorkProfile(), comm_bytes=-1)


class TestSimulateExecution:
    def test_barrier_is_slowest_machine(self):
        """The superstep ends when the straggler finishes."""
        cluster = two_machine_cluster()
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(SuperstepTrace(phases=[phase(flops=1e9), phase(flops=1e9)]))
        report = simulate_execution(t, cluster)
        slow_busy = report.machines[0].busy_seconds
        fast_busy = report.machines[1].busy_seconds
        assert slow_busy > fast_busy
        assert report.runtime_seconds == pytest.approx(slow_busy)

    def test_runtime_sums_supersteps(self):
        cluster = two_machine_cluster()
        t = ExecutionTrace(app="x", num_machines=2)
        step = SuperstepTrace(phases=[phase(flops=1e9), phase(flops=1e9)])
        t.append(step)
        one = simulate_execution(t, cluster).runtime_seconds
        t.append(step)
        two = simulate_execution(t, cluster).runtime_seconds
        assert two == pytest.approx(2 * one)

    def test_idle_machine_burns_energy_at_barrier(self):
        cluster = two_machine_cluster()
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(SuperstepTrace(phases=[phase(flops=1e9), phase(flops=0)]))
        report = simulate_execution(t, cluster)
        fast = report.machines[1]
        assert fast.busy_seconds == 0.0
        assert fast.energy_joules > 0.0  # idle power over the wall time

    def test_balanced_load_less_energy_than_straggler(self):
        cluster = two_machine_cluster(slow_ghz=1.0, fast_ghz=1.0)
        skew = ExecutionTrace(app="x", num_machines=2)
        skew.append(SuperstepTrace(phases=[phase(flops=2e9), phase(flops=0)]))
        balanced = ExecutionTrace(app="x", num_machines=2)
        balanced.append(SuperstepTrace(phases=[phase(flops=1e9), phase(flops=1e9)]))
        e_skew = simulate_execution(skew, cluster).energy_joules
        e_bal = simulate_execution(balanced, cluster).energy_joules
        assert e_bal < e_skew

    def test_comm_overlapped_with_compute(self):
        """Communication only matters when it exceeds computation."""
        net = NetworkModel(bandwidth_gbs=1.0, latency_s=0.0)
        slow = MachineSpec("slow", hw_threads=3, freq_ghz=1.0)  # 1 thread
        cluster = Cluster([slow, slow], network=net,
                          perf=PerformanceModel(efficiency_decay=0.0))
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(SuperstepTrace(phases=[phase(flops=1e9, comm=1e9),
                                        phase(flops=1e9, comm=1e9)]))
        report = simulate_execution(t, cluster)
        # compute = 1 s, comm = 1 s at 1 GB/s: overlap keeps wall at 1 s.
        assert report.runtime_seconds == pytest.approx(1.0)

    def test_comm_dominates_when_larger(self):
        net = NetworkModel(bandwidth_gbs=1.0, latency_s=0.0)
        slow = MachineSpec("slow", hw_threads=3, freq_ghz=1.0)
        cluster = Cluster([slow, slow], network=net)
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(SuperstepTrace(phases=[phase(flops=0, comm=3e9),
                                        phase(flops=0, comm=3e9)]))
        assert simulate_execution(t, cluster).runtime_seconds == pytest.approx(3.0)

    def test_single_machine_skips_network(self):
        net = NetworkModel(bandwidth_gbs=1.0, latency_s=10.0)
        solo = Cluster([MachineSpec("m", hw_threads=3, freq_ghz=1.0)], network=net)
        t = ExecutionTrace(app="x", num_machines=1)
        t.append(SuperstepTrace(phases=[phase(flops=1e9, comm=1e9)], sync_rounds=4))
        report = simulate_execution(t, solo)
        assert report.machines[0].comm_seconds == 0.0

    def test_machine_count_mismatch(self):
        t = ExecutionTrace(app="x", num_machines=3)
        with pytest.raises(EngineError):
            simulate_execution(t, two_machine_cluster())

    def test_threads_override(self):
        cluster = two_machine_cluster()
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(SuperstepTrace(phases=[phase(flops=1e9), phase(flops=1e9)]))
        full = simulate_execution(t, cluster)
        throttled = simulate_execution(t, cluster, threads_override=[1, 1])
        assert throttled.runtime_seconds > full.runtime_seconds

    def test_threads_override_wrong_length(self):
        t = ExecutionTrace(app="x", num_machines=2)
        with pytest.raises(EngineError):
            simulate_execution(t, two_machine_cluster(), threads_override=[1])

    def test_straggler_name(self):
        cluster = two_machine_cluster()
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(SuperstepTrace(phases=[phase(flops=1e9), phase(flops=1e9)]))
        assert simulate_execution(t, cluster).straggler == "slow"

    def test_utilization_bounds(self):
        cluster = two_machine_cluster()
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(SuperstepTrace(phases=[phase(flops=1e9), phase(flops=1e9)]))
        for m in simulate_execution(t, cluster).machines:
            assert 0.0 <= m.utilization <= 1.0

    def test_cost_usd(self):
        from repro.cluster.catalog import get_machine

        cluster = Cluster([get_machine("c4.xlarge")])
        t = ExecutionTrace(app="x", num_machines=1)
        t.append(SuperstepTrace(phases=[phase(flops=2.9e9 * 2 * 3600)]))
        report = simulate_execution(t, cluster)
        # Roughly an hour of compute on 2 threads at 2.9 GHz.
        assert report.cost_usd(cluster) == pytest.approx(0.209, rel=0.05)
