"""Connected Components correctness against NetworkX and analytic cases."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.connected_components import ConnectedComponents
from repro.engine.distributed_graph import DistributedGraph
from repro.engine.sync_engine import SyncEngine
from repro.graph.digraph import DiGraph
from repro.partition import HybridPartitioner
from repro.partition.base import PartitionResult


def run_cc(graph, machines=1):
    if machines == 1:
        part = PartitionResult(
            graph, np.zeros(graph.num_edges, np.int32), 1, "single", None
        )
    else:
        part = HybridPartitioner(seed=3).partition(graph, machines)
    return SyncEngine().run(ConnectedComponents(), DistributedGraph(part))


class TestAgainstNetworkX:
    def test_component_count(self, powerlaw_graph):
        trace = run_cc(powerlaw_graph, machines=4)
        nxg = powerlaw_graph.to_networkx()
        assert trace.result["num_components"] == nx.number_weakly_connected_components(
            nxg
        )

    def test_partition_matches_networkx(self, powerlaw_graph):
        """Two vertices share a label iff they are weakly connected."""
        labels = run_cc(powerlaw_graph, machines=2).result["labels"]
        nxg = powerlaw_graph.to_networkx()
        for comp in nx.weakly_connected_components(nxg):
            comp = list(comp)
            assert np.unique(labels[comp]).size == 1

    def test_largest_component_size(self, powerlaw_graph):
        trace = run_cc(powerlaw_graph, machines=2)
        nxg = powerlaw_graph.to_networkx()
        expected = max(len(c) for c in nx.weakly_connected_components(nxg))
        assert trace.result["largest_component"] == expected


class TestAnalyticCases:
    def test_two_triangles(self, two_components_graph):
        trace = run_cc(two_components_graph)
        assert trace.result["num_components"] == 2
        labels = trace.result["labels"]
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == labels[4] == labels[5] == 3

    def test_direction_ignored(self):
        """Weak connectivity: a directed chain is one component."""
        g = DiGraph.from_edges([(2, 1), (1, 0), (3, 4)], num_vertices=5)
        labels = run_cc(g).result["labels"]
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == labels[4] == 3

    def test_isolated_vertices_are_components(self):
        g = DiGraph.from_edges([(0, 1)], num_vertices=4)
        trace = run_cc(g)
        assert trace.result["num_components"] == 3

    def test_label_is_component_minimum(self, ring_graph):
        labels = run_cc(ring_graph).result["labels"]
        assert np.all(labels == 0)

    def test_chain_supersteps_scale_with_diameter(self):
        """Label 0 needs ~n supersteps to traverse an n-chain."""
        n = 20
        g = DiGraph.from_edges([(i, i + 1) for i in range(n - 1)], num_vertices=n)
        trace = run_cc(g)
        assert n - 2 <= trace.result["supersteps"] <= n + 2
