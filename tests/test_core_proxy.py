"""Unit tests for repro.core.proxy (proxy-set management)."""

import pytest

from repro.core.proxy import DEFAULT_PROXY_ALPHAS, ProxySet
from repro.errors import ProfilingError
from repro.powerlaw.generator import generate_power_law_graph


class TestDefaults:
    def test_papers_three_alphas(self):
        assert DEFAULT_PROXY_ALPHAS == (1.95, 2.1, 2.25)

    def test_default_set_size(self):
        assert len(ProxySet()) == 3


class TestGraphs:
    def test_generated_once_and_cached(self):
        ps = ProxySet(num_vertices=500)
        first = ps.graphs()
        second = ps.graphs()
        for name in ps.names:
            assert first[name] is second[name]

    def test_vertex_counts(self):
        ps = ProxySet(num_vertices=700)
        for g in ps.graphs().values():
            assert g.num_vertices == 700

    def test_density_ordering_follows_alpha(self):
        """Smaller alpha -> denser proxy (Fig. 6's relationship)."""
        ps = ProxySet(num_vertices=3000)
        graphs = ps.graphs()
        edges = [graphs[n].num_edges for n in ps.names]  # alphas ascending
        assert edges[0] > edges[1] > edges[2]

    def test_deterministic_by_seed(self):
        a = ProxySet(num_vertices=400, seed=9).graphs()
        b = ProxySet(num_vertices=400, seed=9).graphs()
        for name in a:
            assert a[name] == b[name]


class TestCoverage:
    def test_covers_natural_band(self):
        ps = ProxySet()
        for alpha in (1.9, 2.0, 2.2, 2.3):
            assert ps.covers(alpha)

    def test_does_not_cover_extremes(self):
        ps = ProxySet()
        assert not ps.covers(1.5)
        assert not ps.covers(3.0)

    def test_ensure_coverage_extends(self):
        ps = ProxySet(num_vertices=2000)
        sparse = generate_power_law_graph(2000, 2.9, seed=1)
        added = ps.ensure_coverage(sparse)
        assert added
        assert len(ps) == 4
        assert ps.covers(2.8)

    def test_ensure_coverage_noop_when_covered(self):
        ps = ProxySet(num_vertices=2000)
        typical = generate_power_law_graph(2000, 2.1, seed=1)
        assert not ps.ensure_coverage(typical)
        assert len(ps) == 3


class TestValidation:
    def test_too_few_vertices(self):
        with pytest.raises(ProfilingError):
            ProxySet(num_vertices=1)

    def test_empty_alphas(self):
        with pytest.raises(ProfilingError):
            ProxySet(alphas=())
