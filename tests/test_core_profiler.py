"""Unit tests for repro.core.profiler (the Fig. 7a flow)."""

import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.core.profiler import ProxyProfiler
from repro.core.proxy import ProxySet
from repro.errors import ProfilingError


@pytest.fixture(scope="module")
def small_proxies():
    return ProxySet(num_vertices=1500, seed=50)


@pytest.fixture(scope="module")
def mixed_cluster():
    return Cluster(
        [get_machine("c4.xlarge"), get_machine("c4.xlarge"), get_machine("c4.8xlarge")],
        perf=PerformanceModel(model_scale=0.001),
    )


class TestProfile:
    def test_pool_covers_requested_apps(self, small_proxies, mixed_cluster):
        prof = ProxyProfiler(proxies=small_proxies, apps=("pagerank", "coloring"))
        report = prof.profile(mixed_cluster)
        assert set(report.pool.apps()) == {"pagerank", "coloring"}

    def test_one_measurement_per_group_not_per_machine(
        self, small_proxies, mixed_cluster
    ):
        """Two c4.xlarge instances form one group: one profiling sample."""
        prof = ProxyProfiler(proxies=small_proxies, apps=("pagerank",))
        report = prof.profile(mixed_cluster)
        machine_types = {r.machine_type for r in report.records}
        assert machine_types == {"c4.xlarge", "c4.8xlarge"}
        # records = proxies x groups for the one app
        assert len(report.records) == len(small_proxies) * 2

    def test_slowest_machine_anchors_at_one(self, small_proxies, mixed_cluster):
        prof = ProxyProfiler(proxies=small_proxies, apps=("pagerank",))
        table = prof.profile(mixed_cluster).pool.get("pagerank")
        assert table.ratio("c4.xlarge") == pytest.approx(1.0)
        assert table.ratio("c4.8xlarge") > 1.5

    def test_ccrs_application_specific(self, small_proxies, mixed_cluster):
        """Fig. 2's diversity: different apps measure different ratios."""
        prof = ProxyProfiler(
            proxies=small_proxies, apps=("pagerank", "triangle_count")
        )
        pool = prof.profile(mixed_cluster).pool
        pr = pool.get("pagerank").ratio("c4.8xlarge")
        tc = pool.get("triangle_count").ratio("c4.8xlarge")
        assert pr != pytest.approx(tc, rel=0.02)

    def test_runtimes_accessor(self, small_proxies, mixed_cluster):
        prof = ProxyProfiler(proxies=small_proxies, apps=("pagerank",))
        report = prof.profile(mixed_cluster)
        times = report.runtimes("pagerank", "c4.xlarge")
        assert len(times) == len(small_proxies)
        assert all(t > 0 for t in times)

    def test_empty_apps_rejected(self, small_proxies):
        with pytest.raises(ProfilingError):
            ProxyProfiler(proxies=small_proxies, apps=())


class TestProfileGraph:
    def test_oracle_table(self, small_proxies, mixed_cluster, powerlaw_graph):
        prof = ProxyProfiler(proxies=small_proxies)
        table = prof.profile_graph("pagerank", powerlaw_graph, mixed_cluster)
        assert table.ratio("c4.xlarge") == pytest.approx(1.0)
        assert table.ratio("c4.8xlarge") > 1.0

    def test_proxy_ccr_tracks_oracle(self, small_proxies, mixed_cluster, powerlaw_graph):
        """The paper's accuracy claim in miniature."""
        prof = ProxyProfiler(proxies=small_proxies, apps=("pagerank",))
        proxy = prof.profile(mixed_cluster).pool.get("pagerank")
        oracle = prof.profile_graph("pagerank", powerlaw_graph, mixed_cluster)
        rel_err = abs(
            proxy.ratio("c4.8xlarge") - oracle.ratio("c4.8xlarge")
        ) / oracle.ratio("c4.8xlarge")
        assert rel_err < 0.15
