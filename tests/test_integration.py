"""Integration tests: the subsystems composed as the paper composes them.

These exercise the full pipelines — proxy profiling feeding partitioning
feeding execution — and assert the paper's qualitative claims at test
scale (each claim is checked at evaluation scale by the benchmarks).
"""

import numpy as np
import pytest

from repro.apps.registry import DEFAULT_APPS, make_app
from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.core.estimators import (
    ProxyCCREstimator,
    ThreadCountEstimator,
    UniformEstimator,
)
from repro.core.flow import ProxyGuidedSystem
from repro.core.profiler import ProxyProfiler
from repro.core.proxy import ProxySet
from repro.engine.runtime import GraphProcessingSystem
from repro.graph.datasets import load_dataset
from repro.partition import make_partitioner

SCALE = 0.002


@pytest.fixture(scope="module")
def perf():
    return PerformanceModel(model_scale=SCALE)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("citation", scale=SCALE)


@pytest.fixture(scope="module")
def proxies():
    return ProxySet(num_vertices=round(3_200_000 * SCALE), seed=100)


class TestCase1Pipeline:
    """Same-thread-count EC2 cluster: only CCR sees the heterogeneity."""

    @pytest.fixture(scope="class")
    def cluster(self, perf):
        return Cluster(
            [get_machine("m4.2xlarge")] * 2 + [get_machine("c4.2xlarge")] * 2,
            perf=perf,
        )

    def test_prior_work_equals_default_here(self, cluster):
        prior = ThreadCountEstimator().weights(cluster, "pagerank")
        default = UniformEstimator().weights(cluster, "pagerank")
        assert np.allclose(prior, default)

    def test_ccr_shifts_load_to_c4(self, cluster, graph, proxies):
        est = ProxyCCREstimator(profiler=ProxyProfiler(proxies=proxies))
        w = est.weights(cluster, "pagerank")
        assert w[2] > w[0] and w[3] > w[1]

    def test_ccr_run_not_slower_than_default(self, cluster, graph, proxies):
        est = ProxyCCREstimator(profiler=ProxyProfiler(proxies=proxies))
        sys_ = GraphProcessingSystem(cluster)
        part = make_partitioner("hybrid", seed=4)
        app = make_app("connected_components")
        default = sys_.run(app, graph, part).report
        guided = sys_.run(
            app, graph, part, weights=est.weights(cluster, "connected_components")
        ).report
        assert guided.runtime_seconds <= default.runtime_seconds * 1.05


class TestCase2Pipeline:
    """Thread-count-heterogeneous local cluster: everyone beats default,
    CCR beats prior."""

    @pytest.fixture(scope="class")
    def cluster(self, perf):
        from repro.experiments.common import case2_machines

        return Cluster(case2_machines(), perf=perf)

    def test_orderings(self, cluster, graph, proxies):
        sys_ = GraphProcessingSystem(cluster)
        part = make_partitioner("hybrid", seed=4)
        app_name = "pagerank"
        runtimes = {}
        for est in (
            UniformEstimator(),
            ThreadCountEstimator(),
            ProxyCCREstimator(profiler=ProxyProfiler(proxies=proxies)),
        ):
            w = est.weights(cluster, app_name)
            runtimes[est.name] = sys_.run(
                make_app(app_name), graph, part, weights=w
            ).report.runtime_seconds
        assert runtimes["prior_work"] < runtimes["default"]
        assert runtimes["proxy_ccr"] < runtimes["default"]

    def test_energy_savings_from_balance(self, cluster, graph, proxies):
        sys_ = GraphProcessingSystem(cluster)
        part = make_partitioner("hybrid", seed=4)
        est = ProxyCCREstimator(profiler=ProxyProfiler(proxies=proxies))
        default = sys_.run(make_app("pagerank"), graph, part).report
        guided = sys_.run(
            make_app("pagerank"), graph, part,
            weights=est.weights(cluster, "pagerank"),
        ).report
        assert guided.energy_joules < default.energy_joules


class TestProfilingReuse:
    def test_pool_persists_and_reloads(self, tmp_path, perf, proxies):
        """The offline pool round-trips through disk and drives the flow."""
        cluster = Cluster(
            [get_machine("c4.xlarge"), get_machine("c4.2xlarge")], perf=perf
        )
        report = ProxyProfiler(proxies=proxies, apps=("pagerank",)).profile(cluster)
        path = tmp_path / "pool.json"
        report.pool.save(path)

        from repro.core.ccr import CCRPool

        est = ProxyCCREstimator(pool=CCRPool.load(path))
        est._pool_signature = est._signature(cluster)
        w = est.weights(cluster, "pagerank")
        assert w[1] > w[0]

    def test_all_four_apps_profile(self, perf, proxies):
        cluster = Cluster(
            [get_machine("c4.xlarge"), get_machine("c4.2xlarge")], perf=perf
        )
        pool = ProxyProfiler(proxies=proxies, apps=DEFAULT_APPS).profile(cluster).pool
        assert set(pool.apps()) == set(DEFAULT_APPS)


class TestProxyGuidedSystemEndToEnd:
    def test_all_apps_all_algorithms(self, perf, graph, proxies):
        """Every (app, partitioner) pair runs through the full flow."""
        cluster = Cluster(
            [get_machine("m4.2xlarge")] * 2 + [get_machine("c4.2xlarge")] * 2,
            perf=perf,
        )
        est = ProxyCCREstimator(profiler=ProxyProfiler(proxies=proxies))
        system = ProxyGuidedSystem(cluster, estimator=est)
        for app in DEFAULT_APPS:
            for alg in ("random_hash", "grid", "ginger"):
                out = system.process(app, graph, partitioner=alg)
                assert out.report.runtime_seconds > 0
                assert out.report.num_supersteps >= 1
