"""Unit tests for repro.cluster.power (energy accounting)."""

import pytest

from repro.cluster.machine import MachineSpec
from repro.cluster.power import EnergyCounter, machine_energy
from repro.errors import ClusterError


def machine(**kw):
    defaults = dict(
        hw_threads=6, freq_ghz=2.0, idle_watts=10.0, dyn_watts_per_thread=5.0
    )
    defaults.update(kw)
    return MachineSpec("pwr", **defaults)


class TestMachineEnergy:
    def test_idle_only(self):
        # 10 W idle for 2 s, never busy.
        assert machine_energy(machine(), 0.0, 2.0) == pytest.approx(20.0)

    def test_busy_adds_dynamic(self):
        # idle 10 W * 2 s + 4 threads * 5 W * 1 s busy.
        m = machine()
        assert machine_energy(m, 1.0, 2.0) == pytest.approx(20.0 + 20.0)

    def test_thread_override(self):
        m = machine()
        assert machine_energy(m, 1.0, 1.0, threads=2) == pytest.approx(10 + 10)

    def test_activity_scales_dynamic(self):
        m = machine()
        full = machine_energy(m, 1.0, 1.0, activity=1.0)
        half = machine_energy(m, 1.0, 1.0, activity=0.5)
        assert full - half == pytest.approx(10.0)

    def test_idle_power_burns_during_barrier_wait(self):
        """The straggler effect: same busy time, longer wall = more energy."""
        m = machine()
        short = machine_energy(m, 1.0, 1.0)
        long = machine_energy(m, 1.0, 3.0)
        assert long > short

    def test_wall_shorter_than_busy_rejected(self):
        with pytest.raises(ClusterError):
            machine_energy(machine(), 2.0, 1.0)

    def test_negative_busy_rejected(self):
        with pytest.raises(ClusterError):
            machine_energy(machine(), -1.0, 1.0)

    def test_bad_activity(self):
        with pytest.raises(ClusterError):
            machine_energy(machine(), 1.0, 1.0, activity=2.0)


class TestEnergyCounter:
    def test_accumulates(self):
        c = EnergyCounter()
        c.record(machine(), 0.0, 1.0)
        c.record(machine(), 0.0, 1.0)
        assert c.total_joules == pytest.approx(20.0)

    def test_by_machine(self):
        c = EnergyCounter()
        c.record(machine(), 0.0, 1.0)
        other = MachineSpec("other", hw_threads=4, freq_ghz=2.0, idle_watts=1.0)
        c.record(other, 0.0, 1.0)
        by = c.by_machine()
        assert by["pwr"] == pytest.approx(10.0)
        assert by["other"] == pytest.approx(1.0)

    def test_record_returns_joules(self):
        c = EnergyCounter()
        assert c.record(machine(), 0.0, 2.0) == pytest.approx(20.0)

    def test_reset(self):
        c = EnergyCounter()
        c.record(machine(), 0.0, 1.0)
        c.reset()
        assert c.total_joules == 0.0
        assert c.samples == []

    def test_samples_carry_details(self):
        c = EnergyCounter()
        c.record(machine(), 0.5, 1.0)
        s = c.samples[0]
        assert s.machine == "pwr" and s.busy_seconds == 0.5 and s.wall_seconds == 1.0
