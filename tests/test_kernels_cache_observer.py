"""Regressions at the cache/observer boundary used by the job service.

Two contracts the service leans on:

* installing an observer gates the kernel caches off (so observed runs
  profile for real), but hits must *resume* once the observer is
  uninstalled mid-process — the gate is per-call, not a one-way switch;
* the estimate cache key embeds the full cluster identity, so services
  fronting different clusters in one process can never trade
  projections.
"""

from repro import obs
from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.graph.digraph import DiGraph
from repro.kernels.cache import estimate_cache, profile_trace_cache
from repro.powerlaw.generator import generate_power_law_graph
from repro.service import GraphSpec, JobRequest, JobService, Workload
from repro.service.estimate import projected_seconds


def make_cluster(scale: float = 0.01, small: bool = False) -> Cluster:
    machines = (
        [get_machine("c4.xlarge"), get_machine("c4.2xlarge")]
        if small
        else [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")]
    )
    return Cluster(machines, perf=PerformanceModel(model_scale=scale))


def make_graph(seed: int = 0) -> DiGraph:
    return generate_power_law_graph(num_vertices=300, alpha=2.1, seed=seed)


class TestObserverGate:
    def test_hits_resume_after_observer_uninstalled(self):
        cluster = make_cluster(0.01)
        graph = make_graph()

        cold = projected_seconds(cluster, "pagerank", graph)
        warm = projected_seconds(cluster, "pagerank", graph)
        assert warm == cold
        stats = estimate_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

        # Observed call: the gate bypasses the cache entirely (no new
        # hits or misses) but still computes the same number.
        with obs.enabled(obs.Observer()):
            observed = projected_seconds(cluster, "pagerank", graph)
        assert observed == cold
        assert estimate_cache.stats() == stats

        # Uninstalled again: the warm entry is still there and serves.
        after = projected_seconds(cluster, "pagerank", graph)
        assert after == cold
        assert estimate_cache.stats()["hits"] == stats["hits"] + 1
        assert estimate_cache.stats()["misses"] == stats["misses"]

    def test_observed_run_records_profile_spans(self):
        cluster = make_cluster(0.01)
        graph = make_graph()
        projected_seconds(cluster, "pagerank", graph)  # warm the caches
        observer = obs.Observer()
        with obs.enabled(observer):
            projected_seconds(cluster, "pagerank", graph)
        # The observed call profiled for real instead of reading the
        # cached trace, so its span stream is complete.
        assert observer.spans

    def test_profile_trace_cache_shared_across_clusters(self):
        # The single-machine profile trace depends only on (app, graph),
        # so two clusters may share it; only the estimate is per-cluster.
        graph = make_graph()
        projected_seconds(make_cluster(), "pagerank", graph)
        trace_misses = profile_trace_cache.stats()["misses"]
        projected_seconds(make_cluster(small=True), "pagerank", graph)
        assert profile_trace_cache.stats()["misses"] == trace_misses
        assert profile_trace_cache.stats()["hits"] >= 1


class TestObserverGateWithStore:
    def test_attached_store_never_touched_under_observer(self, tmp_path):
        """PR 7: the summary store inherits the PR 4 gate — an observed
        run neither reads nor writes the store, and still computes the
        same number."""
        from repro.kernels.cache import (
            attach_store,
            clear_all_caches,
            detach_store,
        )
        from repro.store import SummaryStore

        cluster = make_cluster(0.01)
        graph = make_graph()
        with SummaryStore.create(str(tmp_path / "s.db")) as store:
            attach_store(store)
            cold = projected_seconds(cluster, "pagerank", graph)
            rows_before = store.counts()
            assert sum(rows_before.values()) >= 1  # store was populated

            clear_all_caches()
            with obs.enabled(obs.Observer()):
                observed = projected_seconds(cluster, "pagerank", graph)
            assert observed == cold
            # Gated: zero store reads, zero new rows.
            assert estimate_cache.stats()["store_hits"] == 0
            assert profile_trace_cache.stats()["store_hits"] == 0
            assert store.counts() == rows_before

            # Uninstalled again: the store serves the warm row.
            after = projected_seconds(cluster, "pagerank", graph)
            assert after == cold
            assert estimate_cache.stats()["store_hits"] == 1
            detach_store()


class TestCrossClusterIsolation:
    def test_estimates_never_leak_between_clusters(self):
        graph = make_graph()
        fast = projected_seconds(make_cluster(), "pagerank", graph)
        slow = projected_seconds(make_cluster(small=True), "pagerank", graph)
        assert fast != slow
        assert estimate_cache.stats()["size"] == 2
        # Re-asking either cluster returns its own number, not the
        # most recently cached one.
        assert projected_seconds(make_cluster(), "pagerank", graph) == fast
        assert (
            projected_seconds(make_cluster(small=True), "pagerank", graph)
            == slow
        )

    def test_two_services_on_different_clusters_disagree(self):
        workload = Workload(
            jobs=(
                JobRequest(
                    job_id="j",
                    app="pagerank",
                    graph=GraphSpec(vertices=300, alpha=2.1, seed=0),
                ),
            ),
            seed=0,
        )
        fast = JobService(make_cluster()).run_workload(workload)
        slow = JobService(make_cluster(small=True)).run_workload(workload)
        a, b = fast.records[0], slow.records[0]
        assert a.status == b.status == "completed"
        # A leaked estimate or priced run would make these equal.
        assert a.charged_seconds != b.charged_seconds
        assert a.end_s != b.end_s

    def test_warm_cache_does_not_change_service_trace(self):
        workload = Workload(
            jobs=(
                JobRequest(
                    job_id="j",
                    app="pagerank",
                    graph=GraphSpec(vertices=300, alpha=2.1, seed=0),
                ),
            ),
            seed=0,
        )
        cluster = make_cluster(0.01)
        cold = JobService(cluster).run_workload(workload).trace_json()
        warm = JobService(cluster).run_workload(workload).trace_json()
        assert cold == warm
