"""Federation chaos soak: a 120-job stream across 3 shards under fire.

Extends the ``test_service_chaos`` soak to the federation: the stream
mixes deadlines, seeded engine crash faults and a scripted shard fault
schedule (two shard crashes, one partition, one slowdown), then the
replay is checked against the federation's ledger invariants:

* no job is lost and none runs twice — every submission gets exactly
  one terminal record, and the journals agree with the ledger;
* the simulated clock is monotone and no shard overlaps two runs
  (zero-width pre-run rejections sort before runs at the same instant);
* time/energy conservation — the summary totals are the sums of the
  per-record charges, and jobs that never ran are charged nothing;
* the scripted chaos actually happened (crashes, failovers, recoveries);
* two same-seed replays produce byte-identical traces.
"""

import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.faults import (
    ShardCrash,
    ShardFaultSchedule,
    ShardPartition,
    ShardSlowdown,
)
from repro.faults.checkpoint import CheckpointPolicy, RetryPolicy
from repro.federation import FederationPolicy, FederationService
from repro.service import (
    JOB_STATUSES,
    BreakerPolicy,
    ServicePolicy,
    generate_workload,
)

NUM_JOBS = 120
NUM_SHARDS = 3

SHARD_FAULTS = ShardFaultSchedule(
    crashes=(
        ShardCrash(time_s=0.5, shard=0, downtime_s=0.6),
        ShardCrash(time_s=1.5, shard=1, downtime_s=0.4),
    ),
    partitions=(ShardPartition(time_s=0.8, shard=2, duration_s=0.5),),
    slowdowns=(
        ShardSlowdown(time_s=2.0, shard=1, factor=3.0, duration_s=0.5),
    ),
)


def _workload():
    return generate_workload(
        NUM_JOBS,
        seed=29,
        mean_interarrival_s=0.03,
        deadline_fraction=0.25,
        fault_fraction=0.2,
        crash_rate=0.02,
        hot_machine=1,
        hot_fraction=0.1,
        hot_repeats=1,
    )


def _clusters():
    def one():
        return Cluster(
            [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
            perf=PerformanceModel(model_scale=0.01),
        )

    return [one() for _ in range(NUM_SHARDS)]


@pytest.fixture(scope="module")
def soak():
    """One chaotic federated replay, shared by every check below."""
    workload = _workload()

    def run():
        service = FederationService(
            _clusters(),
            policy=ServicePolicy(max_queue_depth=6, max_attempts=2),
            breaker_policy=BreakerPolicy(failure_threshold=3, cooldown_s=1.0),
            checkpoint=CheckpointPolicy(interval=5, restart_seconds=0.05),
            engine_retry=RetryPolicy(max_retries=2, backoff_base_s=0.01),
            federation=FederationPolicy(steal_backlog=2),
        )
        return service.run_workload(workload, shard_faults=SHARD_FAULTS)

    return workload, run(), run()


class TestNoJobLostOrDoubled:
    def test_every_submission_has_one_terminal_record(self, soak):
        workload, result, _ = soak
        assert len(result.records) == NUM_JOBS
        assert sorted(r.job_id for r in result.records) == sorted(
            j.job_id for j in workload.jobs
        )
        assert all(r.status in JOB_STATUSES for r in result.records)

    def test_record_ids_are_unique(self, soak):
        _, result, _ = soak
        ids = [r.job_id for r in result.records]
        assert len(ids) == len(set(ids))

    def test_journals_agree_with_the_ledger(self, soak):
        _, result, _ = soak
        # Exactly one completed:* journal entry per non-rejected job
        # across all shard journals; rejected jobs hold no custody and
        # are placed on shard -1.
        completed = []
        for shard in result.shards:
            completed.extend(
                e.job_id
                for e in shard.journal
                if e.kind.startswith("completed:")
            )
        assert len(completed) == len(set(completed))
        placements = dict(result.placements)
        ran = sorted(
            r.job_id for r in result.records if r.status != "rejected"
        )
        assert sorted(completed) == ran
        for r in result.records:
            if r.status == "rejected":
                assert placements[r.job_id] == -1
            else:
                assert placements[r.job_id] >= 0

    def test_statuses_partition_the_submissions(self, soak):
        _, result, _ = soak
        summary = result.summary()
        assert summary["jobs_submitted"] == NUM_JOBS
        assert (
            summary["jobs_completed"]
            + summary["jobs_rejected"]
            + summary["jobs_failed"]
            + summary["jobs_deadline_exceeded"]
            == NUM_JOBS
        )


class TestChaosActuallyHappened:
    def test_shard_level_faults_fired(self, soak):
        _, result, _ = soak
        assert result.shard_crashes >= 1
        assert result.failovers + result.recoveries > 0
        assert any(e.kind == "shard_crash" for e in result.events)

    def test_engine_level_chaos_fired(self, soak):
        _, result, _ = soak
        counts = result.service_view().by_status()
        assert counts["completed"] > 0
        assert counts["rejected"] > 0
        assert counts["deadline_exceeded"] > 0
        assert sum(r.crashes for r in result.records) > 0

    def test_lost_work_is_accounted(self, soak):
        _, result, _ = soak
        if result.aborted_runs:
            assert result.lost_seconds > 0.0
        assert result.lost_seconds >= 0.0


class TestMonotoneClock:
    def test_per_job_times_ordered(self, soak):
        _, result, _ = soak
        for r in result.records:
            assert r.submit_s >= 0.0
            if r.start_s is not None:
                assert r.start_s >= r.submit_s
            if r.end_s is not None:
                assert r.end_s >= r.start_s

    def test_no_shard_overlaps_two_runs(self, soak):
        _, result, _ = soak
        placements = dict(result.placements)
        for shard in result.shards:
            ran = sorted(
                (
                    r
                    for r in result.records
                    if r.start_s is not None
                    and placements[r.job_id] == shard.shard_id
                ),
                # Zero-width pre-run records (deadline_exceeded with
                # attempts=0) must order before a run starting at the
                # same instant.
                key=lambda r: (r.start_s, r.end_s),
            )
            for prev, cur in zip(ran, ran[1:]):
                assert cur.start_s >= prev.end_s - 1e-9, (
                    shard.shard_id,
                    prev.job_id,
                    cur.job_id,
                )

    def test_makespan_covers_every_finish(self, soak):
        _, result, _ = soak
        last_end = max(
            r.end_s for r in result.records if r.end_s is not None
        )
        assert result.makespan_s == last_end

    def test_event_stream_is_time_sorted(self, soak):
        _, result, _ = soak
        times = [e.time_s for e in result.events]
        assert times == sorted(times)

    def test_journal_times_monotone_per_shard(self, soak):
        _, result, _ = soak
        for shard in result.shards:
            times = [e.time_s for e in shard.journal]
            assert times == sorted(times)


class TestConservation:
    def test_summary_totals_are_record_sums(self, soak):
        _, result, _ = soak
        summary = result.summary()
        assert summary["charged_seconds_total"] == sum(
            r.charged_seconds for r in result.records
        )
        assert summary["charged_energy_joules_total"] == sum(
            r.charged_energy_joules for r in result.records
        )
        assert summary["retry_backoff_seconds_total"] == sum(
            r.retries_backoff_s for r in result.records
        )

    def test_jobs_that_never_ran_cost_nothing(self, soak):
        _, result, _ = soak
        for r in result.records:
            if r.start_s is None or r.end_s == r.start_s:
                assert r.charged_seconds == 0.0
                assert r.charged_energy_joules == 0.0

    def test_shard_counters_sum_to_federation_totals(self, soak):
        _, result, _ = soak
        assert result.steals == sum(
            s.steals_in for s in result.shards
        )
        assert sum(s.steals_in for s in result.shards) == sum(
            s.steals_out for s in result.shards
        )
        assert result.failovers == sum(
            s.failovers_in for s in result.shards
        )
        assert result.shard_crashes == sum(
            s.crashes for s in result.shards
        )
        assert sum(s.jobs_completed for s in result.shards) == sum(
            1 for r in result.records if r.status != "rejected"
        )


class TestReplayDeterminism:
    def test_two_same_seed_runs_are_byte_identical(self, soak):
        _, first, second = soak
        assert first.trace_json() == second.trace_json()

    def test_summaries_match_exactly(self, soak):
        _, first, second = soak
        assert first.summary() == second.summary()

    def test_events_and_journals_match(self, soak):
        _, first, second = soak
        assert first.events == second.events
        for a, b in zip(first.shards, second.shards):
            assert a.journal == b.journal
