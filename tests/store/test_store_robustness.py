"""Robustness of the store file itself: corruption, staleness, races.

Contract (ISSUE 7): a damaged or stale store must *recompute or exit 2
with a typed StoreError* — never silently serve bad rows.
"""

from __future__ import annotations

import os
import sqlite3
import subprocess
import sys

import pytest

from repro.cli import main
from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.errors import StoreCorruptError, StoreSchemaError
from repro.kernels.cache import attach_store, clear_all_caches, detach_store
from repro.powerlaw.generator import generate_power_law_graph
from repro.service import generate_workload
from repro.store import SCHEMA_VERSION, SummaryStore


def _cluster():
    return Cluster(
        [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
        perf=PerformanceModel(model_scale=0.01),
    )


def _projected(graph):
    from repro.service.estimate import projected_seconds

    return projected_seconds(_cluster(), "pagerank", graph)


@pytest.fixture
def workload_file(tmp_path) -> str:
    path = str(tmp_path / "wl.json")
    generate_workload(num_jobs=3, seed=5).save(path)
    return path


class TestTruncatedStore:
    def test_truncated_file_raises_corrupt(self, store_path):
        with SummaryStore.create(store_path) as st:
            st.put("estimate", "('k',)", b"1.5")
        # Keep the sqlite magic but chop the body: unreadable database.
        with open(store_path, "r+b") as fh:
            fh.truncate(100)
        with pytest.raises(StoreCorruptError, match="corrupt|unreadable"):
            SummaryStore.open(store_path)

    def test_cli_serve_exits_2_on_truncated_store(
        self, store_path, workload_file, capsys
    ):
        SummaryStore.create(store_path).close()
        with open(store_path, "r+b") as fh:
            fh.truncate(100)
        rc = main(
            [
                "serve", "--cluster", "m4.2xlarge",
                "--workload", workload_file, "--store", store_path,
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestFlippedPayloadByte:
    def test_recompute_not_serve(self, store_path):
        graph = generate_power_law_graph(num_vertices=150, alpha=2.0, seed=9)
        cold = _projected(graph)

        store = SummaryStore.create(store_path)
        clear_all_caches()
        attach_store(store)
        _projected(graph)  # populate
        detach_store()
        store.close()

        # Flip one byte in every payload behind the store's back.
        conn = sqlite3.connect(store_path)
        rows = conn.execute(
            "SELECT namespace, key_sha, payload FROM summaries"
        ).fetchall()
        assert rows
        for namespace, sha, payload in rows:
            payload = bytes(payload)
            flipped = bytes([payload[0] ^ 0xFF]) + payload[1:]
            conn.execute(
                "UPDATE summaries SET payload = ? "
                "WHERE namespace = ? AND key_sha = ?",
                (flipped, namespace, sha),
            )
        conn.commit()
        conn.close()

        store = SummaryStore.open(store_path)
        clear_all_caches()
        attach_store(store)
        warm = _projected(graph)
        detach_store()

        # Every flipped row was quarantined and recomputed, so the result
        # matches the cold run exactly and the recomputed rows (written
        # back through the caches) superseded the quarantine records.
        assert warm == cold
        assert sum(store.counts().values()) >= 1
        assert store.quarantined() == {}

        # And the rewritten rows now verify and serve.
        clear_all_caches()
        attach_store(store)
        again = _projected(graph)
        detach_store()
        store.close()
        assert again == cold


class TestStaleSchema:
    def _make_stale(self, store_path):
        SummaryStore.create(store_path).close()
        conn = sqlite3.connect(store_path)
        conn.execute(
            "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 41),),
        )
        conn.commit()
        conn.close()

    def test_open_raises_typed(self, store_path):
        self._make_stale(store_path)
        with pytest.raises(StoreSchemaError, match="regenerate"):
            SummaryStore.open(store_path)

    def test_cli_gen_stats_exits_2(self, store_path, capsys):
        self._make_stale(store_path)
        rc = main(["gen", "--store", store_path, "--stats"])
        assert rc == 2
        assert "schema version" in capsys.readouterr().err

    def test_cli_experiment_exits_2(self, store_path, capsys):
        self._make_stale(store_path)
        rc = main(
            ["experiment", "table1", "--store", store_path]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestConcurrentGen:
    def test_two_process_gen_never_corrupts(
        self, store_path, workload_file, tmp_path
    ):
        """Two `repro gen --init --all` racing on one store file: each
        must finish clean (or fail typed with exit 2), and the store
        they leave behind must open, verify and serve."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        cmd = [
            sys.executable, "-m", "repro", "gen",
            "--store", store_path, "--init", "--all",
            "--workload", workload_file, "--cluster", "m4.2xlarge,c4.2xlarge",
        ]
        procs = [
            subprocess.Popen(
                cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE
            )
            for _ in range(2)
        ]
        results = [p.communicate(timeout=300) for p in procs]
        codes = [p.returncode for p in procs]
        # Never a crash (typed failures exit 2), and at least one warmer
        # must have completed the materialization.
        assert all(code in (0, 2) for code in codes), (codes, results)
        assert 0 in codes, (codes, results)
        for code, (_, err) in zip(codes, results):
            if code == 2:
                assert b"error:" in err

        # The surviving store is valid: schema checks out, every row
        # verifies, and a warm replay equals a cold one.
        with SummaryStore.open(store_path) as store:
            assert sum(store.counts().values()) >= 1
            from repro.service import JobService, Workload

            workload = Workload.load(workload_file)
            clear_all_caches()
            cold = JobService(_cluster()).run_workload(workload).trace_json()
            clear_all_caches()
            attach_store(store)
            warm = JobService(_cluster()).run_workload(workload).trace_json()
            detach_store()
            assert warm == cold
            assert store.quarantined() == {}
