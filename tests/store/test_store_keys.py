"""Property tests (hypothesis) for the store's cache-key model.

The store's content addressing inherits the kernel cache keys: graph
identity is the sha256 content fingerprint, cluster identity is the full
``cluster_key`` tuple, and strategy/seed/backend components sit in the
key text verbatim.  Two properties carry the no-cross-leakage contract
(extending tests/test_kernels_cache_observer.py):

* **stability** — graphs with identical content (however constructed or
  relabeled to the same canonical arrays) produce identical fingerprints
  and therefore identical key texts and key hashes;
* **divergence** — keys differ whenever any of cluster, strategy, seed
  or weights differ, so a warm store can never serve a row across those
  boundaries.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineSpec
from repro.cluster.perfmodel import PerformanceModel
from repro.graph.digraph import DiGraph
from repro.kernels.cache import cluster_key, graph_fingerprint, machine_key
from repro.store.store import key_sha

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, src, dst


machine_specs = st.builds(
    MachineSpec,
    st.sampled_from(("a", "b", "c")),
    hw_threads=st.integers(min_value=1, max_value=32),
    freq_ghz=st.floats(min_value=0.5, max_value=4.5, allow_nan=False),
    mem_bw_gbs=st.floats(min_value=1.0, max_value=64.0, allow_nan=False),
    llc_mb=st.floats(min_value=0.5, max_value=64.0, allow_nan=False),
)


def _estimate_key(app, graph, cluster):
    """The key shape service.estimate uses for projected runtimes."""
    return (app, graph_fingerprint(graph), cluster_key(cluster))


def _assignment_key(name, config, graph, num_machines, weights):
    """The key shape partition.base uses for assignments."""
    return (
        "assignment", name, config, graph_fingerprint(graph),
        num_machines, weights.tobytes(),
    )


# ---------------------------------------------------------------------- #
# Stability
# ---------------------------------------------------------------------- #


class TestKeyStability:
    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_content_equal_graphs_share_fingerprint(self, data):
        """Two independently built graphs with the same canonical edge
        arrays fingerprint identically — and so do their keys."""
        n, src, dst = data
        g1 = DiGraph(n, np.array(src, np.int64), np.array(dst, np.int64))
        g2 = DiGraph.from_edges(list(zip(src, dst)), num_vertices=n)
        assert graph_fingerprint(g1) == graph_fingerprint(g2)
        cluster = Cluster([MachineSpec("m", 4, 2.0, 8.0, 4.0)])
        k1, k2 = (
            _estimate_key("pagerank", g, cluster) for g in (g1, g2)
        )
        assert repr(k1) == repr(k2)
        assert key_sha(repr(k1)) == key_sha(repr(k2))

    @given(edge_lists(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_vertex_relabeling_preserving_arrays_is_stable(self, data, seed):
        """A relabeling π applied to both endpoints *and* undone again
        reproduces the same content, hence the same fingerprint."""
        n, src, dst = data
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n, dtype=np.int64)
        src_a = np.array(src, np.int64)
        dst_a = np.array(dst, np.int64)
        round_tripped = DiGraph(n, inv[perm[src_a]], inv[perm[dst_a]])
        assert graph_fingerprint(round_tripped) == graph_fingerprint(
            DiGraph(n, src_a, dst_a)
        )

    @given(machine_specs)
    @settings(max_examples=40, deadline=None)
    def test_machine_key_is_value_based(self, spec):
        import dataclasses

        clone = dataclasses.replace(spec)
        assert spec is not clone
        assert machine_key(spec) == machine_key(clone)
        assert repr(machine_key(spec)) == repr(machine_key(clone))


# ---------------------------------------------------------------------- #
# Divergence
# ---------------------------------------------------------------------- #


class TestKeyDivergence:
    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_single_edge_change_diverges(self, data):
        n, src, dst = data
        g1 = DiGraph(n, np.array(src, np.int64), np.array(dst, np.int64))
        g2 = DiGraph(
            n + 1,
            np.array(src + [n], np.int64),
            np.array(dst + [0], np.int64),
        )
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    @given(machine_specs, machine_specs)
    @settings(max_examples=40, deadline=None)
    def test_cluster_divergence_iff_specs_differ(self, spec_a, spec_b):
        """Cluster keys diverge exactly when any machine field differs:
        no cross-cluster leakage, no spurious cold starts."""
        ca = Cluster([spec_a], perf=PerformanceModel(model_scale=0.01))
        cb = Cluster([spec_b], perf=PerformanceModel(model_scale=0.01))
        if machine_key(spec_a) == machine_key(spec_b):
            assert cluster_key(ca) == cluster_key(cb)
        else:
            assert cluster_key(ca) != cluster_key(cb)
            assert key_sha(repr(cluster_key(ca))) != key_sha(
                repr(cluster_key(cb))
            )

    @given(
        st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_perf_scale_divergence(self, scale_a, scale_b):
        spec = MachineSpec("m", 4, 2.0, 8.0, 4.0)
        ka = cluster_key(
            Cluster([spec], perf=PerformanceModel(model_scale=scale_a))
        )
        kb = cluster_key(
            Cluster([spec], perf=PerformanceModel(model_scale=scale_b))
        )
        assert (ka == kb) == (scale_a == scale_b)

    @given(
        st.sampled_from(("random_hash", "grid", "oblivious", "ginger")),
        st.sampled_from(("random_hash", "grid", "oblivious", "ginger")),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_strategy_and_seed_divergence(self, name_a, name_b, seed_a, seed_b):
        graph = DiGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        weights = np.array([1.0, 1.0])
        ka = _assignment_key(name_a, (("seed", repr(seed_a)),), graph, 2, weights)
        kb = _assignment_key(name_b, (("seed", repr(seed_b)),), graph, 2, weights)
        same = name_a == name_b and seed_a == seed_b
        assert (repr(ka) == repr(kb)) == same

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
            min_size=2, max_size=2,
        ),
        st.lists(
            st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
            min_size=2, max_size=2,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_weight_divergence(self, w_a, w_b):
        """Different capability weights can never share an assignment row."""
        graph = DiGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        wa = np.asarray(w_a, dtype=np.float64)
        wb = np.asarray(w_b, dtype=np.float64)
        ka = _assignment_key("hybrid", (), graph, 2, wa)
        kb = _assignment_key("hybrid", (), graph, 2, wb)
        assert (repr(ka) == repr(kb)) == bool(np.array_equal(wa, wb))


# ---------------------------------------------------------------------- #
# Store round-trip under arbitrary keys/payloads
# ---------------------------------------------------------------------- #


class TestStoreRoundTripProperties:
    @given(
        st.text(min_size=1, max_size=200),
        st.binary(min_size=0, max_size=512),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_key_payload_roundtrip(self, key_text, payload):
        # Hypothesis forbids function-scoped fixtures under @given, so
        # the store lives in a temp dir managed inside the example.
        import tempfile

        from repro.store import SummaryStore

        with tempfile.TemporaryDirectory() as tmp:
            with SummaryStore.create(f"{tmp}/s.db") as store:
                store.put("estimate", key_text, payload)
                assert store.get("estimate", key_text) == payload

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=60, deadline=None)
    def test_float_codec_exact(self, x):
        from repro.store.codecs import FLOAT_CODEC

        assert FLOAT_CODEC.decode(FLOAT_CODEC.encode(x)) == x

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=0, max_size=64,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_assignment_codec_exact(self, values):
        from repro.store.codecs import ASSIGNMENT_CODEC

        arr = np.asarray(values, dtype=np.int32)
        out = ASSIGNMENT_CODEC.decode(ASSIGNMENT_CODEC.encode(arr))
        assert np.array_equal(out, arr)
