"""Store semantics across federation shards (satellite 4, ISSUE 7).

Shards share the process-level kernel caches, so one attached store is
automatically the *shared warm tier* for every shard.  These regressions
pin the contract that closes the latent `projected_seconds` gap:

* an L1 eviction no longer loses a priced estimate — the store serves it
  back (eviction coordination);
* shards warm each other through the shared store, byte-identically;
* priced times stay isolated per cluster identity: shards fronting
  different clusters can never trade estimates through the store.
"""

from __future__ import annotations

import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.federation import FederationService
from repro.kernels.cache import (
    attach_store,
    clear_all_caches,
    detach_store,
    estimate_cache,
)
from repro.powerlaw.generator import generate_power_law_graph
from repro.service import generate_workload
from repro.service.estimate import projected_seconds


def _cluster(kind: str = "mixed", scale: float = 0.01) -> Cluster:
    machines = {
        "mixed": ["m4.2xlarge", "c4.2xlarge"],
        "compute": ["c4.xlarge", "c4.2xlarge"],
    }[kind]
    return Cluster(
        [get_machine(name) for name in machines],
        perf=PerformanceModel(model_scale=scale),
    )


@pytest.fixture
def workload():
    return generate_workload(num_jobs=6, seed=3)


def test_estimate_survives_l1_eviction_via_store(store):
    """The latent-gap regression: an evicted projected_seconds entry is
    re-served from the store, not recomputed into a fresh miss."""
    graph = generate_power_law_graph(num_vertices=250, alpha=2.1, seed=1)
    cluster = _cluster()
    attach_store(store)
    cold = projected_seconds(cluster, "pagerank", graph)

    # Simulate the eviction: the estimate cache's in-process layer is
    # emptied (clear() touches L1 only — exactly what an LRU eviction
    # does to one row), while the store keeps the materialized value.
    estimate_cache.clear()
    warm = projected_seconds(cluster, "pagerank", graph)
    detach_store()
    assert warm == cold
    assert estimate_cache.stats()["store_hits"] == 1
    # Served, not recomputed: no second miss was recorded.
    assert estimate_cache.stats()["misses"] == 0


def test_shards_share_one_warm_store(store, workload):
    """A federation warmed by a previous replay starts warm on every
    shard — and replays byte-identically."""
    clusters = [_cluster(), _cluster()]
    cold = FederationService(clusters).run_workload(workload).trace_json()

    clear_all_caches()
    attach_store(store)
    populate = FederationService(clusters).run_workload(workload).trace_json()

    clear_all_caches()  # fresh process, warm store
    warm = FederationService(clusters).run_workload(workload).trace_json()
    store_hits = estimate_cache.stats()["store_hits"]
    detach_store()

    assert cold == populate == warm
    assert store_hits >= 1


def test_single_shard_federation_matches_job_service_warm(store, workload):
    """The PR 6 compat contract holds under a warm store too: a 1-shard
    federation and the plain JobService produce the same ledger."""
    from repro.service import JobService

    attach_store(store)
    FederationService([_cluster()]).run_workload(workload)  # populate
    clear_all_caches()
    fed = FederationService([_cluster()]).run_workload(workload)
    clear_all_caches()
    plain = JobService(_cluster()).run_workload(workload)
    detach_store()
    assert [
        (r.job_id, r.status, r.charged_seconds) for r in fed.records
    ] == [(r.job_id, r.status, r.charged_seconds) for r in plain.records]


def test_priced_times_isolated_per_cluster_through_store(store):
    """Two shards fronting different clusters share the store file but
    never each other's priced rows."""
    graph = generate_power_law_graph(num_vertices=250, alpha=2.1, seed=1)
    mixed, compute = _cluster("mixed"), _cluster("compute")

    attach_store(store)
    a = projected_seconds(mixed, "pagerank", graph)
    b = projected_seconds(compute, "pagerank", graph)
    assert a != b

    # Fresh L1s: each cluster gets *its own* row back from the store.
    clear_all_caches()
    assert projected_seconds(mixed, "pagerank", graph) == a
    assert projected_seconds(compute, "pagerank", graph) == b
    assert estimate_cache.stats()["store_hits"] == 2
    detach_store()

    # Two distinct estimate rows were materialized, not one shared row.
    assert store.counts()["estimate"] == 2


def test_heterogeneous_shards_warm_replay_identical(store, workload):
    """Different per-shard clusters: warm federation replay still
    byte-identical to cold."""
    clusters = [_cluster("mixed"), _cluster("compute")]
    cold = FederationService(clusters).run_workload(workload).trace_json()

    clear_all_caches()
    attach_store(store)
    FederationService(clusters).run_workload(workload)
    clear_all_caches()
    warm = FederationService(clusters).run_workload(workload).trace_json()
    detach_store()
    assert cold == warm
