"""Unit coverage for the store file, the layered cache and the codecs."""

from __future__ import annotations

import os
import sqlite3

import numpy as np
import pytest

from repro.engine.trace import ExecutionTrace
from repro.errors import StoreCorruptError, StoreError, StoreSchemaError
from repro.store import SCHEMA_VERSION, CODECS, LayeredCache, SummaryStore
from repro.store.codecs import (
    ASSIGNMENT_CODEC,
    FLOAT_CODEC,
    JSON_CODEC,
    TRACE_CODEC,
)


class TestSummaryStoreLifecycle:
    def test_create_then_open_roundtrip(self, store_path):
        with SummaryStore.create(store_path) as st:
            st.put("estimate", "('k',)", b"1.5")
        with SummaryStore.open(store_path) as st:
            assert st.get("estimate", "('k',)") == b"1.5"

    def test_create_is_idempotent_over_valid_store(self, store_path):
        with SummaryStore.create(store_path) as st:
            st.put("estimate", "('k',)", b"1.5")
        # A second --init must not wipe existing rows.
        with SummaryStore.create(store_path) as st:
            assert st.get("estimate", "('k',)") == b"1.5"

    def test_create_leaves_no_temp_file(self, store_path, tmp_path):
        SummaryStore.create(store_path).close()
        leftovers = [p for p in os.listdir(tmp_path) if "init-tmp" in p]
        assert leftovers == []

    def test_open_missing_store_is_typed(self, store_path):
        with pytest.raises(StoreError, match="no summary store"):
            SummaryStore.open(store_path)

    def test_open_non_sqlite_file_is_corrupt(self, store_path):
        with open(store_path, "wb") as fh:
            fh.write(b"definitely not a database")
        with pytest.raises(StoreCorruptError, match="bad sqlite header"):
            SummaryStore.open(store_path)

    def test_open_stale_schema_version_is_typed(self, store_path):
        SummaryStore.create(store_path).close()
        conn = sqlite3.connect(store_path)
        conn.execute(
            "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError, match="schema version"):
            SummaryStore.open(store_path)


class TestSummaryStoreRows:
    def test_get_missing_row_is_none(self, store):
        assert store.get("estimate", "('missing',)") is None

    def test_put_overwrites(self, store):
        store.put("estimate", "('k',)", b"1.0")
        store.put("estimate", "('k',)", b"2.0")
        assert store.get("estimate", "('k',)") == b"2.0"
        assert store.counts() == {"estimate": 1}

    def test_namespaces_do_not_collide(self, store):
        store.put("estimate", "('k',)", b"1.0")
        store.put("machine_time", "('k',)", b"9.0")
        assert store.get("estimate", "('k',)") == b"1.0"
        assert store.get("machine_time", "('k',)") == b"9.0"

    def test_corrupt_payload_quarantined_not_served(self, store, store_path):
        store.put("estimate", "('k',)", b"1.5")
        conn = sqlite3.connect(store_path)
        conn.execute("UPDATE summaries SET payload = ?", (b"6.66",))
        conn.commit()
        conn.close()
        # The flipped payload no longer matches its recorded sha: the row
        # is quarantined and reported as a miss, never served.
        assert store.get("estimate", "('k',)") is None
        assert store.quarantined() == {"estimate": 1}
        assert store.counts() == {}
        # Recomputing and re-putting supersedes the quarantine record.
        store.put("estimate", "('k',)", b"1.5")
        assert store.get("estimate", "('k',)") == b"1.5"
        assert store.quarantined() == {}

    def test_delete_namespace(self, store):
        store.put("estimate", "('a',)", b"1")
        store.put("estimate", "('b',)", b"2")
        store.put("assignment", "('c',)", b"3")
        assert store.delete_namespace("estimate") == 2
        assert store.counts() == {"assignment": 1}

    def test_vacuum_drops_quarantine_records(self, store, store_path):
        store.put("estimate", "('k',)", b"1.5")
        conn = sqlite3.connect(store_path)
        conn.execute("UPDATE summaries SET payload = ?", (b"oops",))
        conn.commit()
        conn.close()
        store.get("estimate", "('k',)")
        assert store.vacuum() == 1
        assert store.quarantined() == {}

    def test_stats_shape(self, store):
        store.put("estimate", "('k',)", b"1.5")
        stats = store.stats()
        assert stats["schema_version"] == SCHEMA_VERSION
        assert stats["namespaces"] == {"estimate": 1}
        assert stats["total_rows"] == 1


class TestLayeredCache:
    def test_detached_behaves_like_lru(self):
        cache = LayeredCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {
            "size": 1, "hits": 1, "misses": 1, "store_hits": 0,
        }

    def test_namespace_and_codec_must_pair(self):
        with pytest.raises(ValueError, match="together"):
            LayeredCache(maxsize=2, namespace="estimate")

    def test_store_hit_promotes_into_l1(self, store):
        cache = LayeredCache(
            maxsize=4, namespace="estimate", codec=CODECS["estimate"]
        )
        cache.attach(store)
        cache.put(("k",), 1.25)
        cache.clear()  # L1 emptied; the store keeps the row
        assert len(cache) == 0
        assert cache.get(("k",)) == 1.25
        assert cache.stats()["store_hits"] == 1
        # Promoted: the second read is a pure L1 hit.
        assert cache.get(("k",)) == 1.25
        assert cache.stats()["store_hits"] == 1

    def test_l1_eviction_survives_via_store(self, store):
        cache = LayeredCache(
            maxsize=1, namespace="estimate", codec=CODECS["estimate"]
        )
        cache.attach(store)
        cache.put(("a",), 1.0)
        cache.put(("b",), 2.0)  # evicts ("a",) from the 1-slot L1
        assert cache.get(("a",)) == 1.0
        assert cache.stats()["store_hits"] == 1

    def test_detach_stops_store_reads(self, store):
        cache = LayeredCache(
            maxsize=4, namespace="estimate", codec=CODECS["estimate"]
        )
        cache.attach(store)
        cache.put(("k",), 1.25)
        cache.clear()
        cache.detach()
        assert cache.get(("k",)) is None

    def test_codec_less_cache_ignores_attach(self, store):
        cache = LayeredCache(maxsize=4)
        cache.attach(store)
        assert not cache.attached
        cache.put(("k",), object())
        assert store.counts() == {}


class TestCodecs:
    def test_float_roundtrip_is_exact(self):
        for x in (0.0, -0.0, 1.5, 1 / 3, 1e-300, 123456.789e12):
            payload = FLOAT_CODEC.encode(x)
            assert FLOAT_CODEC.decode(payload) == x

    def test_assignment_roundtrip_is_frozen(self):
        arr = np.array([0, 3, 1, 2, 2, 0], dtype=np.int32)
        out = ASSIGNMENT_CODEC.decode(ASSIGNMENT_CODEC.encode(arr))
        assert np.array_equal(out, arr)
        assert out.dtype == np.int32
        assert not out.flags.writeable

    def test_assignment_rejects_headerless_payload(self):
        with pytest.raises(ValueError, match="header"):
            ASSIGNMENT_CODEC.decode(b"\x00\x01\x02\x03")

    def test_trace_roundtrip_preserves_canonical_json(self, ring_graph):
        from repro.apps.registry import make_app
        from repro.engine.distributed_graph import DistributedGraph
        from repro.partition import make_partitioner

        res = make_partitioner("random_hash", seed=1).partition(
            ring_graph, 2, np.array([1.0, 1.0])
        )
        trace = make_app("pagerank").execute(DistributedGraph(res))
        decoded = TRACE_CODEC.decode(TRACE_CODEC.encode(trace))
        assert isinstance(decoded, ExecutionTrace)
        assert decoded.canonical_json() == trace.canonical_json()

    def test_json_roundtrip(self):
        doc = {"b": [1, 2.5, "x"], "a": {"nested": None}}
        assert JSON_CODEC.decode(JSON_CODEC.encode(doc)) == doc

    def test_every_persisted_namespace_has_a_codec(self):
        assert sorted(CODECS) == [
            "assignment",
            "estimate",
            "machine_time",
            "profile_trace",
            "run_summary",
            "stream_checkpoint",
        ]
