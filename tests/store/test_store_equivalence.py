"""Differential store equivalence: cold vs warm vs mid-run-populated.

The headline PR-7 contract: a run served from a warm summary store is
**byte-identical** to a cold run — same assignment bytes, same
ExecutionTrace canonical JSON, same projected-runtime floats, same
experiment series — across every app × partitioner combination and both
kernel backends.  The store may change how fast an answer arrives, never
which answer arrives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.registry import DEFAULT_APPS, make_app
from repro.engine.distributed_graph import DistributedGraph
from repro.kernels.backend import use_backend
from repro.kernels.cache import (
    assignment_cache,
    attach_store,
    clear_all_caches,
    detach_store,
    estimate_cache,
    profile_trace_cache,
)
from repro.partition import make_partitioner
from repro.powerlaw.generator import generate_power_law_graph
from repro.store import SummaryStore

PARTITIONERS = ("random_hash", "grid", "oblivious", "hybrid", "ginger")
BACKENDS = ("vectorized", "scalar")
WEIGHTS = (1.0, 2.0, 1.5, 0.5)
NUM_MACHINES = 4


@pytest.fixture(scope="module")
def pl_graph():
    return generate_power_law_graph(num_vertices=200, alpha=2.0, seed=17)


def _cluster():
    from repro.cluster.catalog import get_machine
    from repro.cluster.cluster import Cluster
    from repro.cluster.perfmodel import PerformanceModel

    return Cluster(
        [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
        perf=PerformanceModel(model_scale=0.01),
    )


def _run_pipeline(app_name, partitioner_name, graph, backend):
    """Partition + execute + project, with whatever caches are attached."""
    from repro.service.estimate import projected_seconds

    with use_backend(backend):
        part = make_partitioner(partitioner_name, seed=3)
        res = part.partition(graph, NUM_MACHINES, np.array(WEIGHTS))
        trace = make_app(app_name).execute(DistributedGraph(res))
        projected = projected_seconds(_cluster(), app_name, graph)
    return (
        res.assignment.tobytes(),
        trace.canonical_json(),
        repr(projected),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("partitioner_name", PARTITIONERS)
@pytest.mark.parametrize("app_name", DEFAULT_APPS)
def test_cold_vs_warm_byte_identical(
    app_name, partitioner_name, backend, pl_graph, store
):
    """Every matrix cell: cold == populate == warm, byte for byte."""
    cold = _run_pipeline(app_name, partitioner_name, pl_graph, backend)

    # Populating pass: same run with an empty store attached.
    clear_all_caches()
    attach_store(store)
    populate = _run_pipeline(app_name, partitioner_name, pl_graph, backend)

    # Warm pass: L1s emptied, every read that hits comes from sqlite.
    clear_all_caches()
    warm = _run_pipeline(app_name, partitioner_name, pl_graph, backend)
    detach_store()

    assert cold == populate == warm
    if backend == "vectorized":
        # The warm pass actually exercised the store.
        total_store_hits = sum(
            c.stats()["store_hits"]
            for c in (assignment_cache, estimate_cache, profile_trace_cache)
        )
        assert total_store_hits >= 1
    else:
        # Scalar runs are gated off the caches entirely: the attached
        # store must never be consulted, and results still match.
        assert assignment_cache.stats()["store_hits"] == 0
        assert estimate_cache.stats()["store_hits"] == 0


@pytest.mark.parametrize("app_name", DEFAULT_APPS)
def test_mid_run_populated_store_is_transparent(app_name, pl_graph, store):
    """A store warmed by a *different, overlapping* run must not perturb.

    The store is populated by a hybrid-partitioned run, then a
    ginger-partitioned run attaches it: profile traces and estimates hit
    warm, assignments miss — and every byte still matches the cold run.
    """
    cold = _run_pipeline(app_name, "ginger", pl_graph, "vectorized")

    clear_all_caches()
    attach_store(store)
    _run_pipeline(app_name, "hybrid", pl_graph, "vectorized")

    clear_all_caches()
    mixed = _run_pipeline(app_name, "ginger", pl_graph, "vectorized")
    detach_store()

    assert cold == mixed
    # The overlapping namespace really did serve warm rows (the estimate
    # short-circuits the profile-trace lookup, so it is the one that hits).
    assert estimate_cache.stats()["store_hits"] >= 1


def test_attach_mid_process_after_warm_l1(pl_graph, store):
    """Attaching a store to already-warm L1s neither loses nor changes
    anything: subsequent runs write through and still match."""
    cold = _run_pipeline("pagerank", "hybrid", pl_graph, "vectorized")
    attach_store(store)  # L1s stay warm; store starts empty
    live = _run_pipeline("pagerank", "hybrid", pl_graph, "vectorized")
    clear_all_caches()
    warm = _run_pipeline("pagerank", "hybrid", pl_graph, "vectorized")
    detach_store()
    assert cold == live == warm


def test_fig8a_series_identical_cold_vs_warm(store):
    """A whole experiment driver: identical BENCH-series rows from a
    warm store."""
    from repro.experiments.fig8 import run_fig8a

    kwargs = dict(scale=0.002, apps=("pagerank",), seed=100)
    clear_all_caches()
    cold_rows = run_fig8a(**kwargs).rows()

    clear_all_caches()
    attach_store(store)
    run_fig8a(**kwargs)  # populate
    clear_all_caches()
    warm_rows = run_fig8a(**kwargs).rows()
    detach_store()

    assert cold_rows == warm_rows


def test_warm_rows_survive_store_reopen(tmp_path, pl_graph):
    """Simulated process restart: rows written before close serve
    byte-identical results from a freshly opened handle."""
    path = str(tmp_path / "restart.db")
    with SummaryStore.create(path) as st:
        attach_store(st)
        first = _run_pipeline("pagerank", "hybrid", pl_graph, "vectorized")
        detach_store()

    clear_all_caches()
    with SummaryStore.open(path) as st:
        attach_store(st)
        second = _run_pipeline("pagerank", "hybrid", pl_graph, "vectorized")
        hits = sum(
            c.stats()["store_hits"]
            for c in (assignment_cache, estimate_cache, profile_trace_cache)
        )
        detach_store()
    assert first == second
    assert hits >= 1
