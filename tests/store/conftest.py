"""Fixtures for the summary-store suites.

The global ``_kernel_isolation`` fixture already detaches any store and
clears the in-process caches around every test; here we add a per-test
store file.
"""

from __future__ import annotations

import pytest

from repro.store import SummaryStore


@pytest.fixture
def store_path(tmp_path) -> str:
    return str(tmp_path / "summaries.db")


@pytest.fixture
def store(store_path):
    st = SummaryStore.create(store_path)
    yield st
    st.close()
