"""Seeded full-jitter write retries against a held ``BEGIN IMMEDIATE``.

Contract (ISSUE 10): a locked store is retried a bounded number of
times with full-jitter backoff before :class:`StoreLockedError`
propagates, and every backoff delay is deterministic given
``retry_seed``.  The lock is held by a second raw sqlite connection so
the contention is real, and the store's ``_sleep`` injection point both
records the drawn delays and (in the recovery test) releases the lock
between attempts — no test actually sleeps.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import StoreLockedError
from repro.store import SummaryStore

#: Milliseconds one attempt blocks before sqlite gives up: tiny, so the
#: exhaustion tests finish in milliseconds rather than 4x5 seconds.
FAST_TIMEOUT_MS = 5
BASE_S = 0.001


def _open_fast(store_path, **kwargs):
    kwargs.setdefault("busy_timeout_ms", FAST_TIMEOUT_MS)
    kwargs.setdefault("retry_base_s", BASE_S)
    return SummaryStore.open(store_path, **kwargs)


@pytest.fixture
def blocker(store_path):
    """A second connection holding the write lock for the whole test."""
    SummaryStore.create(store_path).close()
    conn = sqlite3.connect(store_path, isolation_level=None)
    conn.execute("BEGIN IMMEDIATE")
    yield conn
    conn.close()


def _record_sleeps(store):
    sleeps = []
    store._sleep = sleeps.append
    return sleeps


class TestHeldLock:
    def test_exhausted_retries_raise_typed(self, store_path, blocker):
        with _open_fast(store_path, retry_attempts=2) as st:
            sleeps = _record_sleeps(st)
            with pytest.raises(
                StoreLockedError, match=r"after 3 attempt\(s\)"
            ):
                st.put("estimate", "('k',)", b"1.5")
        # One backoff before each retry, none after the final failure,
        # each drawn from the widening full-jitter window [0, base*2^n).
        assert len(sleeps) == 2
        for attempt, delay in enumerate(sleeps):
            assert 0.0 <= delay < BASE_S * (2.0 ** attempt)

    def test_zero_attempts_fail_on_first_lock(self, store_path, blocker):
        with _open_fast(store_path, retry_attempts=0) as st:
            sleeps = _record_sleeps(st)
            with pytest.raises(
                StoreLockedError, match=r"after 1 attempt\(s\)"
            ):
                st.put("estimate", "('k',)", b"1.5")
        assert sleeps == []

    def test_error_does_not_poison_the_store(self, store_path, blocker):
        with _open_fast(store_path, retry_attempts=0) as st:
            with pytest.raises(StoreLockedError):
                st.put("estimate", "('k',)", b"1.5")
            blocker.execute("ROLLBACK")
            st.put("estimate", "('k',)", b"1.5")
            assert st.get("estimate", "('k',)") == b"1.5"

    def test_lock_released_mid_backoff_recovers(self, store_path, blocker):
        with _open_fast(store_path, retry_attempts=3) as st:
            released = []

            def release(_delay):
                blocker.execute("ROLLBACK")
                released.append(_delay)

            st._sleep = release
            st.put("estimate", "('k',)", b"2.5")
            assert st.get("estimate", "('k',)") == b"2.5"
        # Exactly one backoff: the first retry found the lock gone.
        assert len(released) == 1


class TestDeterministicBackoff:
    def _exhaust(self, store_path, seed):
        with _open_fast(
            store_path, retry_attempts=3, retry_seed=seed
        ) as st:
            sleeps = _record_sleeps(st)
            with pytest.raises(StoreLockedError):
                st.put("estimate", "('k',)", b"1.5")
        return sleeps

    def test_same_seed_same_delays(self, store_path, blocker):
        assert self._exhaust(store_path, seed=7) == self._exhaust(
            store_path, seed=7
        )

    def test_different_seed_different_delays(self, store_path, blocker):
        assert self._exhaust(store_path, seed=7) != self._exhaust(
            store_path, seed=8
        )
