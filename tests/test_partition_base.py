"""Unit tests for repro.partition.base."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition.base import PartitionResult, Partitioner, normalize_weights


class TestNormalizeWeights:
    def test_none_uniform(self):
        w = normalize_weights(None, 4)
        assert np.allclose(w, 0.25)

    def test_normalises_to_one(self):
        w = normalize_weights([1, 2, 3], 3)
        assert w.sum() == pytest.approx(1.0)
        assert np.allclose(w, [1 / 6, 2 / 6, 3 / 6])

    def test_wrong_length(self):
        with pytest.raises(PartitionError, match="entries"):
            normalize_weights([1, 2], 3)

    def test_nonpositive_rejected(self):
        with pytest.raises(PartitionError):
            normalize_weights([1, 0], 2)

    def test_nan_rejected(self):
        with pytest.raises(PartitionError):
            normalize_weights([1, float("nan")], 2)


class TestPartitionResult:
    def test_edges_per_machine(self, tiny_graph):
        assignment = np.array([0, 0, 1, 1, 1, 2, 2], dtype=np.int32)
        r = PartitionResult(tiny_graph, assignment, 3, "test", None)
        assert r.edges_per_machine().tolist() == [2, 3, 2]

    def test_counts_include_empty_machines(self, tiny_graph):
        assignment = np.zeros(7, dtype=np.int32)
        r = PartitionResult(tiny_graph, assignment, 3, "test", None)
        assert r.edges_per_machine().tolist() == [7, 0, 0]

    def test_machine_edges(self, tiny_graph):
        assignment = np.array([0, 1, 0, 1, 0, 1, 0], dtype=np.int32)
        r = PartitionResult(tiny_graph, assignment, 2, "test", None)
        assert r.machine_edges(1).tolist() == [1, 3, 5]

    def test_machine_edges_range_check(self, tiny_graph):
        r = PartitionResult(tiny_graph, np.zeros(7, np.int32), 2, "t", None)
        with pytest.raises(PartitionError):
            r.machine_edges(2)

    def test_wrong_assignment_length(self, tiny_graph):
        with pytest.raises(PartitionError, match="one entry per edge"):
            PartitionResult(tiny_graph, np.zeros(3, np.int32), 2, "t", None)

    def test_out_of_range_assignment(self, tiny_graph):
        bad = np.full(7, 5, dtype=np.int32)
        with pytest.raises(PartitionError):
            PartitionResult(tiny_graph, bad, 2, "t", None)

    def test_weights_normalised_on_construction(self, tiny_graph):
        r = PartitionResult(tiny_graph, np.zeros(7, np.int32), 2, "t", [2, 2])
        assert np.allclose(r.weights, [0.5, 0.5])


class _ConstantPartitioner(Partitioner):
    name = "constant"

    def _assign(self, graph, num_machines, weights):
        return np.zeros(graph.num_edges, dtype=np.int32)


class TestPartitionerBase:
    def test_partition_wraps_result(self, tiny_graph):
        r = _ConstantPartitioner().partition(tiny_graph, 2)
        assert r.algorithm == "constant"
        assert r.num_machines == 2
        assert r.assignment.size == tiny_graph.num_edges

    def test_invalid_machine_count(self, tiny_graph):
        with pytest.raises(PartitionError):
            _ConstantPartitioner().partition(tiny_graph, 0)

    def test_repr_shows_seed(self):
        assert "seed=7" in repr(_ConstantPartitioner(seed=7))
