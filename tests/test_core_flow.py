"""Unit tests for repro.core.flow (the Fig. 7b end-to-end system)."""

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.core.estimators import ThreadCountEstimator, UniformEstimator
from repro.core.flow import ProxyGuidedSystem
from repro.core.profiler import ProxyProfiler
from repro.core.estimators import ProxyCCREstimator
from repro.core.proxy import ProxySet
from repro.partition import GingerPartitioner


@pytest.fixture(scope="module")
def cluster():
    return Cluster(
        [get_machine("c4.xlarge"), get_machine("c4.8xlarge")],
        perf=PerformanceModel(model_scale=0.001),
    )


def proxy_system(cluster, **kwargs):
    est = ProxyCCREstimator(
        profiler=ProxyProfiler(proxies=ProxySet(num_vertices=1200, seed=31))
    )
    return ProxyGuidedSystem(cluster, estimator=est, **kwargs)


class TestProcess:
    def test_end_to_end(self, cluster, powerlaw_graph):
        out = proxy_system(cluster).process("pagerank", powerlaw_graph)
        assert out.report.app == "pagerank"
        assert out.report.runtime_seconds > 0
        assert out.report.energy_joules > 0

    def test_ccr_weights_applied(self, cluster, powerlaw_graph):
        out = proxy_system(cluster).process("connected_components", powerlaw_graph)
        counts = out.partition.edges_per_machine()
        # The 8xlarge receives several times the xlarge's share.
        assert counts[1] > 2.0 * counts[0]

    def test_beats_default_on_hetero_cluster(self, cluster, powerlaw_graph):
        guided = proxy_system(cluster).process("pagerank", powerlaw_graph)
        default = ProxyGuidedSystem(
            cluster, estimator=UniformEstimator()
        ).process("pagerank", powerlaw_graph)
        assert guided.report.runtime_seconds < default.report.runtime_seconds

    def test_app_instance_accepted(self, cluster, powerlaw_graph):
        from repro.apps.pagerank import PageRank

        out = proxy_system(cluster).process(PageRank(damping=0.6), powerlaw_graph)
        assert out.report.app == "pagerank"

    def test_partitioner_name_override(self, cluster, powerlaw_graph):
        out = proxy_system(cluster).process(
            "pagerank", powerlaw_graph, partitioner="random_hash"
        )
        assert out.partition.algorithm == "random_hash"

    def test_partitioner_instance_override(self, cluster, powerlaw_graph):
        out = proxy_system(cluster).process(
            "pagerank", powerlaw_graph, partitioner=GingerPartitioner(seed=3)
        )
        assert out.partition.algorithm == "ginger"

    def test_default_partitioner_is_hybrid(self, cluster, powerlaw_graph):
        out = proxy_system(cluster).process("pagerank", powerlaw_graph)
        assert out.partition.algorithm == "hybrid"

    def test_estimator_pluggable(self, cluster, powerlaw_graph):
        sys_ = ProxyGuidedSystem(cluster, estimator=ThreadCountEstimator())
        out = sys_.process("pagerank", powerlaw_graph)
        counts = out.partition.edges_per_machine()
        # thread weights: 2 vs 34 -> 1:17
        assert counts[1] > 10 * counts[0]
