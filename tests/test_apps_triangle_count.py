"""Triangle Count correctness against NetworkX and analytic cases."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.triangle_count import TriangleCount, undirected_simple_edges
from repro.engine.distributed_graph import DistributedGraph
from repro.graph.digraph import DiGraph
from repro.partition import RandomHashPartitioner
from repro.partition.base import PartitionResult


def nx_triangles(graph):
    und = graph.to_networkx().to_undirected()
    und = nx.Graph(und)
    und.remove_edges_from(nx.selfloop_edges(und))
    return sum(nx.triangles(und).values()) // 3


class TestUndirectedSimpleEdges:
    def test_dedup_and_orientation(self):
        g = DiGraph.from_edges([(1, 0), (0, 1), (0, 1), (2, 2)], num_vertices=3)
        u, v = undirected_simple_edges(g)
        assert u.tolist() == [0] and v.tolist() == [1]

    def test_self_loops_removed(self):
        g = DiGraph.from_edges([(0, 0)], num_vertices=1)
        u, v = undirected_simple_edges(g)
        assert u.size == 0


class TestCounting:
    def test_single_triangle(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=3)
        assert TriangleCount().count_triangles(g) == 1

    def test_triangle_with_reciprocal_edges_counted_once(self):
        g = DiGraph.from_edges(
            [(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)], num_vertices=3
        )
        assert TriangleCount().count_triangles(g) == 1

    def test_ring_has_none(self, ring_graph):
        assert TriangleCount().count_triangles(ring_graph) == 0

    def test_complete_graph(self):
        n = 7
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        g = DiGraph.from_edges(edges, num_vertices=n)
        expected = n * (n - 1) * (n - 2) // 6
        assert TriangleCount().count_triangles(g) == expected

    def test_matches_networkx(self, powerlaw_graph):
        assert TriangleCount().count_triangles(powerlaw_graph) == nx_triangles(
            powerlaw_graph
        )

    def test_row_block_invariance(self, powerlaw_graph):
        """Chunked products give the same count for any block size."""
        a = TriangleCount(row_block=37).count_triangles(powerlaw_graph)
        b = TriangleCount(row_block=100_000).count_triangles(powerlaw_graph)
        assert a == b

    def test_empty_graph(self):
        g = DiGraph(5, np.empty(0, np.int64), np.empty(0, np.int64))
        assert TriangleCount().count_triangles(g) == 0

    def test_invalid_row_block(self):
        with pytest.raises(ValueError):
            TriangleCount(row_block=0)


class TestExecution:
    def test_single_superstep(self, powerlaw_graph):
        part = RandomHashPartitioner(seed=1).partition(powerlaw_graph, 4)
        trace = TriangleCount().execute(DistributedGraph(part))
        assert trace.num_supersteps == 1
        assert trace.result["triangles"] == nx_triangles(powerlaw_graph)

    def test_work_follows_degree_products(self):
        """A machine holding hub edges counts more intersection work."""
        hub_edges = [(0, i) for i in range(1, 30)]
        chain = [(30, 31)]
        g = DiGraph.from_edges(hub_edges + chain, num_vertices=32)
        assignment = np.array([0] * 29 + [1], dtype=np.int32)
        part = PartitionResult(g, assignment, 2, "manual", None)
        trace = TriangleCount().execute(DistributedGraph(part))
        flops = [p.work.flops for p in trace.supersteps[0].phases]
        assert flops[0] > 10 * flops[1]

    def test_distribution_does_not_change_count(self, powerlaw_graph):
        solo = PartitionResult(
            powerlaw_graph,
            np.zeros(powerlaw_graph.num_edges, np.int32),
            1,
            "single",
            None,
        )
        a = TriangleCount().execute(DistributedGraph(solo)).result["triangles"]
        part = RandomHashPartitioner(seed=5).partition(powerlaw_graph, 3)
        b = TriangleCount().execute(DistributedGraph(part)).result["triangles"]
        assert a == b
