"""Calibration regression: pin the model against accidental drift.

The machine catalog and application cost models were calibrated once
against the paper's published scaling shapes (DESIGN.md §6).  These tests
pin the resulting *behavioural* quantities with generous tolerances: they
fail when a refactor accidentally changes the physics, while deliberate
recalibration only needs the golden values refreshed here and in
EXPERIMENTS.md.

Everything runs on small proxies, so the module stays fast.
"""

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.core.profiler import ProxyProfiler
from repro.core.proxy import ProxySet
from repro.experiments.common import case2_machines, case3_machines

SCALE = 0.004


@pytest.fixture(scope="module")
def profiler():
    return ProxyProfiler(proxies=ProxySet(num_vertices=12_800, seed=100))


def ratios(profiler, machines, app):
    cluster = Cluster(machines, perf=PerformanceModel(model_scale=SCALE))
    report = ProxyProfiler(proxies=profiler.proxies, apps=(app,)).profile(cluster)
    return report.pool.get(app)


class TestC4LadderShapes:
    """Fig. 2 / 8a golden curve properties."""

    @pytest.fixture(scope="class")
    def ladder(self, profiler):
        machines = [get_machine(n) for n in
                    ("c4.xlarge", "c4.2xlarge", "c4.4xlarge", "c4.8xlarge")]
        return {
            app: ratios(profiler, machines, app)
            for app in ("pagerank", "coloring", "connected_components",
                        "triangle_count")
        }

    def test_pagerank_saturates_at_top(self, ladder):
        t = ladder["pagerank"]
        final_step = t.ratio("c4.8xlarge") / t.ratio("c4.4xlarge")
        assert final_step < 1.45  # threads grew 2.43x; PR gains far less

    def test_pagerank_top_band(self, ladder):
        assert 4.0 < ladder["pagerank"].ratio("c4.8xlarge") < 6.5

    def test_cc_tops_pagerank(self, ladder):
        assert (
            ladder["connected_components"].ratio("c4.8xlarge")
            > ladder["pagerank"].ratio("c4.8xlarge")
        )

    def test_triangle_count_scales_most(self, ladder):
        tc = ladder["triangle_count"].ratio("c4.8xlarge")
        assert tc == max(t.ratio("c4.8xlarge") for t in ladder.values())
        assert 6.0 < tc < 9.5

    def test_all_apps_far_below_thread_estimate(self, ladder):
        for app, t in ladder.items():
            assert t.ratio("c4.8xlarge") < 17.0 / 1.7, app


class TestCategoryGaps:
    """Fig. 8b golden values: c4 ~1.2x, r3 ~1.1x over m4."""

    def test_c4_advantage(self, profiler):
        t = ratios(
            profiler,
            [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
            "pagerank",
        )
        assert 1.1 < t.ratio("c4.2xlarge") < 1.4

    def test_r3_advantage_smaller(self, profiler):
        t = ratios(
            profiler,
            [get_machine("m4.2xlarge"), get_machine("r3.2xlarge")],
            "connected_components",
        )
        assert 1.02 < t.ratio("r3.2xlarge") < 1.25


class TestLocalClusterCCRs:
    """Case 2/3 golden CCR bands (Section V-B.2/3)."""

    def test_case2_band(self, profiler):
        for app, lo, hi in (
            ("pagerank", 2.8, 4.0),
            ("connected_components", 2.6, 3.7),
            ("triangle_count", 2.5, 3.6),
            ("coloring", 2.2, 3.3),
        ):
            t = ratios(profiler, case2_machines(), app)
            big = [m.name for m in case2_machines()][1]
            assert lo < t.ratio(big) < hi, (app, t.as_dict())

    def test_case3_ccrs_exceed_case2(self, profiler):
        for app in ("pagerank", "connected_components"):
            t2 = ratios(profiler, case2_machines(), app)
            t3 = ratios(profiler, case3_machines(), app)
            assert (
                t3.ratio("xeon_l_12t") > 1.3 * t2.ratio("xeon_l_12t")
            ), app

    def test_case3_pagerank_beyond_six(self, profiler):
        t = ratios(profiler, case3_machines(), "pagerank")
        assert t.ratio("xeon_l_12t") > 6.0

    def test_case3_triangle_count_least_affected(self, profiler):
        """TC's CCR grows the least from Case 2 to Case 3 (paper text)."""
        growth = {}
        for app in ("pagerank", "connected_components", "triangle_count"):
            t2 = ratios(profiler, case2_machines(), app)
            t3 = ratios(profiler, case3_machines(), app)
            growth[app] = t3.ratio("xeon_l_12t") / t2.ratio("xeon_l_12t")
        assert growth["triangle_count"] == min(growth.values()), growth
