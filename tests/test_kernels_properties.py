"""Property-based tests (hypothesis) for the ``repro.kernels`` subsystem.

Three families of invariants:

* the CSR builder is a lossless, deterministic permutation of its input
  (round trip, degree preservation, permutation stability);
* the sort kernels reproduce their numpy reference implementations
  exactly;
* the LRU cache behaves like a plain mapping — hits and misses can never
  change what a lookup returns.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.kernels.cache import LRUCache, graph_fingerprint
from repro.kernels.csr import CSRAdjacency, concat_ranges, stable_machine_order

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #


@st.composite
def edge_arrays(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    m = draw(st.integers(min_value=0, max_value=150))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


@st.composite
def assignments(draw):
    m = draw(st.integers(min_value=1, max_value=8))
    size = draw(st.integers(min_value=0, max_value=200))
    a = draw(st.lists(st.integers(0, m - 1), min_size=size, max_size=size))
    return np.array(a, dtype=np.int32), m


# ---------------------------------------------------------------------- #
# CSR builder
# ---------------------------------------------------------------------- #


class TestCSRAdjacency:
    @given(edge_arrays())
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, data):
        """graph -> CSR -> edges recovers the canonical edge arrays."""
        n, src, dst = data
        csr = CSRAdjacency.from_edges(n, src, dst)
        back_src, back_dst = csr.to_edges()
        assert np.array_equal(back_src, src)
        assert np.array_equal(back_dst, dst)

    @given(edge_arrays())
    @settings(max_examples=80, deadline=None)
    def test_degrees_preserved(self, data):
        n, src, dst = data
        csr = CSRAdjacency.from_edges(n, src, dst)
        assert np.array_equal(csr.degrees(), np.bincount(src, minlength=n))
        assert csr.num_edges == src.size
        assert csr.indptr[-1] == src.size

    @given(edge_arrays())
    @settings(max_examples=60, deadline=None)
    def test_neighbor_slices_in_canonical_order(self, data):
        """Slots of one source keep the canonical (stable) edge order."""
        n, src, dst = data
        csr = CSRAdjacency.from_edges(n, src, dst)
        for v in range(n):
            lo, hi = int(csr.indptr[v]), int(csr.indptr[v + 1])
            eids = csr.edge_ids[lo:hi]
            assert np.array_equal(eids, np.sort(eids))  # stable within row
            assert np.array_equal(csr.indices[lo:hi], dst[eids])
            assert np.all(src[eids] == v)

    @given(edge_arrays(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_under_permuted_input(self, data, rng):
        """Permuting the edge list permutes ``edge_ids`` and nothing else.

        Sorting the permuted CSR's slots back by edge id must recover the
        canonical CSR exactly — construction order cannot leak into the
        adjacency structure.
        """
        n, src, dst = data
        perm = np.arange(src.size)
        rng.shuffle(perm)
        canonical = CSRAdjacency.from_edges(n, src, dst)
        permuted = CSRAdjacency.from_edges(n, src[perm], dst[perm])
        assert np.array_equal(permuted.indptr, canonical.indptr)
        # Canonical edge id of each permuted slot; per row, re-sorting by
        # it must reproduce the canonical row exactly.
        back = perm[permuted.edge_ids]
        for v in range(n):
            lo, hi = int(canonical.indptr[v]), int(canonical.indptr[v + 1])
            order = np.argsort(back[lo:hi], kind="stable")
            assert np.array_equal(
                back[lo:hi][order], canonical.edge_ids[lo:hi]
            )
            assert np.array_equal(
                permuted.indices[lo:hi][order], canonical.indices[lo:hi]
            )

    @given(edge_arrays())
    @settings(max_examples=40, deadline=None)
    def test_from_graph_matches_from_edges(self, data):
        n, src, dst = data
        g = DiGraph(n, src, dst)
        a = CSRAdjacency.from_graph(g)
        gsrc, gdst = g.edges()
        b = CSRAdjacency.from_edges(n, gsrc, gdst)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.edge_ids, b.edge_ids)


# ---------------------------------------------------------------------- #
# Sort kernels
# ---------------------------------------------------------------------- #


class TestSortKernels:
    @given(assignments())
    @settings(max_examples=80, deadline=None)
    def test_stable_machine_order_matches_argsort(self, data):
        assignment, m = data
        order, counts = stable_machine_order(assignment, m)
        assert np.array_equal(order, np.argsort(assignment, kind="stable"))
        assert np.array_equal(counts, np.bincount(assignment, minlength=m))

    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 30)),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_concat_ranges_matches_reference(self, spans):
        starts = np.array([s for s, _ in spans], dtype=np.int64)
        stops = starts + np.array([w for _, w in spans], dtype=np.int64)
        expected = (
            np.concatenate([np.arange(a, b) for a, b in zip(starts, stops)])
            if spans
            else np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(concat_ranges(starts, stops), expected)


# ---------------------------------------------------------------------- #
# LRU cache and fingerprints
# ---------------------------------------------------------------------- #


class TestLRUCache:
    @given(
        st.lists(
            st.tuples(st.sampled_from("gp"), st.integers(0, 9)),
            min_size=0,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_mapping_model(self, ops, maxsize):
        """Against a plain-dict model: a hit never changes the answer.

        Values are a pure function of the key (as every kernel cache
        requires), so the only admissible divergence from the model is a
        ``None`` (miss after eviction) — never a *wrong* value.
        """
        cache = LRUCache(maxsize=maxsize)
        model = {}
        for op, key in ops:
            if op == "p":
                value = ("value", key)
                cache.put(key, value)
                model[key] = value
            else:
                got = cache.get(key)
                if got is not None:
                    assert got == model[key]
            assert len(cache) <= maxsize

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        stats = cache.stats()
        assert stats["hits"] == 3 and stats["misses"] == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestGraphFingerprint:
    @given(edge_arrays())
    @settings(max_examples=40, deadline=None)
    def test_content_keyed(self, data):
        """Independently built copies collide; any change separates them."""
        n, src, dst = data
        a = DiGraph(n, src, dst)
        b = DiGraph(n, src.copy(), dst.copy())
        assert graph_fingerprint(a) == graph_fingerprint(b)
        bigger = DiGraph(n + 1, src, dst)
        assert graph_fingerprint(a) != graph_fingerprint(bigger)
        if src.size:
            src2 = src.copy()
            src2[0] = (src2[0] + 1) % n if n > 1 else src2[0]
            if not np.array_equal(src2, src):
                changed = DiGraph(n, src2, dst)
                assert graph_fingerprint(a) != graph_fingerprint(changed)

    def test_memoised_per_instance(self, tiny_graph):
        first = graph_fingerprint(tiny_graph)
        assert tiny_graph.__dict__["_kernels_fingerprint"] == first
        assert graph_fingerprint(tiny_graph) == first
