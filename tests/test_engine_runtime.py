"""Unit tests for repro.engine.runtime (GraphProcessingSystem)."""

import numpy as np
import pytest

from repro.apps.pagerank import PageRank
from repro.cluster.cluster import Cluster
from repro.engine.runtime import GraphProcessingSystem
from repro.errors import EngineError
from repro.partition import HybridPartitioner


class TestRun:
    def test_outcome_pieces(self, powerlaw_graph, hetero_pair):
        sys_ = GraphProcessingSystem(hetero_pair)
        out = sys_.run(PageRank(), powerlaw_graph, HybridPartitioner(seed=1))
        assert out.partition.num_machines == 2
        assert out.dgraph.num_machines == 2
        assert out.trace.app == "pagerank"
        assert out.report.runtime_seconds > 0

    def test_weights_reach_partitioner(self, powerlaw_graph, hetero_pair):
        sys_ = GraphProcessingSystem(hetero_pair)
        out = sys_.run(
            PageRank(), powerlaw_graph, HybridPartitioner(seed=1), weights=[1, 4]
        )
        counts = out.partition.edges_per_machine()
        assert counts[1] > 3 * counts[0]

    def test_weighted_run_beats_uniform_on_hetero(self, powerlaw_graph, hetero_pair):
        """Loading the fast machine according to capability reduces runtime."""
        sys_ = GraphProcessingSystem(hetero_pair)
        uniform = sys_.run(PageRank(), powerlaw_graph, HybridPartitioner(seed=1))
        weighted = sys_.run(
            PageRank(), powerlaw_graph, HybridPartitioner(seed=1), weights=[1, 2]
        )
        assert weighted.report.runtime_seconds < uniform.report.runtime_seconds


class TestSingleMachineProfiling:
    def test_trace_has_one_partition(self, powerlaw_graph, hetero_pair):
        sys_ = GraphProcessingSystem(hetero_pair)
        trace = sys_.run_single_machine(PageRank(), powerlaw_graph)
        assert trace.num_machines == 1

    def test_no_communication(self, powerlaw_graph, hetero_pair):
        sys_ = GraphProcessingSystem(hetero_pair)
        trace = sys_.run_single_machine(PageRank(), powerlaw_graph)
        assert trace.total_comm_bytes() == 0.0

    def test_machine_index_validated(self, powerlaw_graph, hetero_pair):
        sys_ = GraphProcessingSystem(hetero_pair)
        with pytest.raises(EngineError):
            sys_.run_single_machine(PageRank(), powerlaw_graph, machine_index=5)
