"""Unit tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


def test_basic_layout():
    out = format_table(["a", "b"], [[1, 2], [30, 40]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "-" in lines[1]
    assert lines[2].split() == ["1", "2"]
    assert lines[3].split() == ["30", "40"]


def test_title_first_line():
    out = format_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_float_formatting():
    out = format_table(["v"], [[1.23456]], float_fmt=".2f")
    assert "1.23" in out and "1.2345" not in out


def test_column_alignment():
    out = format_table(["name", "n"], [["long-name", 1], ["x", 22]])
    data_lines = out.splitlines()[2:]
    # 'n' values start at the same column in every row.
    idx = [line.index(str(v)) for line, v in zip(data_lines, ("1", "22"))]
    assert idx[0] == idx[1]


def test_wrong_row_width_raises():
    with pytest.raises(ValueError, match="columns"):
        format_table(["a", "b"], [[1]])


def test_empty_rows_ok():
    out = format_table(["a"], [])
    assert len(out.splitlines()) == 2
