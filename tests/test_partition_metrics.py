"""Unit tests for repro.partition.metrics."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.partition.base import PartitionResult
from repro.partition.metrics import (
    partition_stats,
    replication_factor,
    vertex_presence,
    weighted_imbalance,
)


def make_result(graph, assignment, m, weights=None):
    return PartitionResult(
        graph, np.asarray(assignment, dtype=np.int32), m, "manual", weights
    )


class TestVertexPresence:
    def test_presence_matrix(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)], num_vertices=4)
        r = make_result(g, [0, 1], 2)
        p = vertex_presence(r)
        assert p[0].tolist() == [True, False]
        assert p[1].tolist() == [True, True]  # vertex 1 on both machines
        assert p[2].tolist() == [False, True]
        assert p[3].tolist() == [False, False]  # isolated


class TestReplicationFactor:
    def test_single_machine_is_one(self, powerlaw_graph):
        r = make_result(powerlaw_graph, np.zeros(powerlaw_graph.num_edges), 1)
        assert replication_factor(r) == pytest.approx(1.0)

    def test_split_vertex_counts_twice(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        r = make_result(g, [0, 1], 2)
        # copies: v0=1, v1=2, v2=1 -> mean 4/3
        assert replication_factor(r) == pytest.approx(4 / 3)

    def test_isolated_vertices_excluded(self):
        g = DiGraph.from_edges([(0, 1)], num_vertices=10)
        r = make_result(g, [0], 2)
        assert replication_factor(r) == pytest.approx(1.0)

    def test_empty_graph(self):
        g = DiGraph(3, np.empty(0, np.int64), np.empty(0, np.int64))
        r = make_result(g, [], 2)
        assert replication_factor(r) == 0.0


class TestWeightedImbalance:
    def test_perfect_balance(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
        r = make_result(g, [0, 0, 1, 1], 2)
        assert weighted_imbalance(r) == pytest.approx(1.0)

    def test_overload_detected(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
        r = make_result(g, [0, 0, 0, 1], 2)
        assert weighted_imbalance(r) == pytest.approx(1.5)

    def test_respects_target_weights(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
        # 3:1 split against 0.75/0.25 targets is perfectly balanced.
        r = make_result(g, [0, 0, 0, 1], 2, weights=[0.75, 0.25])
        assert weighted_imbalance(r) == pytest.approx(1.0)

    def test_empty_graph(self):
        g = DiGraph(2, np.empty(0, np.int64), np.empty(0, np.int64))
        assert weighted_imbalance(make_result(g, [], 2)) == 1.0


class TestPartitionStats:
    def test_fields(self, powerlaw_graph):
        from repro.partition import RandomHashPartitioner

        r = RandomHashPartitioner(seed=0).partition(powerlaw_graph, 4)
        st = partition_stats(r)
        assert st.algorithm == "random_hash"
        assert st.num_machines == 4
        assert sum(st.edges_per_machine) == powerlaw_graph.num_edges
        assert st.replication_factor >= 1.0
        assert st.weighted_imbalance >= 1.0
