"""Differential proof that observability is inert (zero perturbation).

The obs subsystem's contract: enabling an observer must not change a
single byte of what the simulation computes.  These tests run identical
workloads dark and instrumented and compare canonical trace JSON, app
results, priced reports — including under a fault schedule with crashes,
slowdowns and a mid-run re-balance through :class:`ResilientRuntime`.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineSpec
from repro.engine.report import simulate_execution
from repro.engine.resilient import ResilientRuntime
from repro.faults import CrashFault, FaultSchedule, SlowdownFault, Supervisor
from repro.obs import Observer, enabled
from repro.testing import GOLDEN_APPS, golden_cluster, golden_graph, golden_run


@pytest.fixture(scope="module")
def graph():
    return golden_graph()


@pytest.mark.parametrize("app", GOLDEN_APPS)
class TestObsInertOnStaticPath:
    def test_trace_and_results_byte_identical(self, app, graph):
        dark = golden_run(app, graph=graph)

        observer = Observer()
        with enabled(observer):
            lit = golden_run(app, graph=graph)

        # The observer actually observed — this is a differential test,
        # not two no-op runs compared to each other.
        assert observer.spans, "observer captured no spans"
        assert observer.metrics.counters, "observer captured no metrics"

        assert lit.trace.canonical_json() == dark.trace.canonical_json()
        assert np.array_equal(
            lit.partition.assignment, dark.partition.assignment
        )

    def test_priced_report_identical(self, app, graph):
        dark = golden_run(app, graph=graph)
        with enabled(Observer()):
            lit_report = simulate_execution(
                golden_run(app, graph=graph).trace, golden_cluster()
            )
        assert lit_report.runtime_seconds == dark.report.runtime_seconds
        assert lit_report.energy_joules == dark.report.energy_joules


class TestObsInertUnderFaults:
    """The resilient path emits far more events; it must stay inert too."""

    @staticmethod
    def _cluster() -> Cluster:
        slow = MachineSpec(
            "slow", hw_threads=4, freq_ghz=2.0, mem_bw_gbs=8.0, llc_mb=4.0
        )
        fast = MachineSpec(
            "fast", hw_threads=6, freq_ghz=4.0, mem_bw_gbs=16.0, llc_mb=8.0
        )
        return Cluster([slow, fast])

    @staticmethod
    def _schedule() -> FaultSchedule:
        return FaultSchedule(
            crashes=(CrashFault(superstep=2, machine=0),),
            slowdowns=(
                SlowdownFault(superstep=3, machine=0, factor=4.0, duration=30),
            ),
            seed=11,
        )

    def _run(self, graph):
        runtime = ResilientRuntime(
            self._cluster(),
            partitioner="hybrid",
            schedule=self._schedule(),
            supervisor=Supervisor(threshold=1.5, patience=2),
            seed=5,
        )
        return runtime.run("pagerank", graph)

    def test_faulted_run_byte_identical(self, graph):
        dark = self._run(graph)

        observer = Observer()
        with enabled(observer):
            lit = self._run(graph)

        names = {s.name for s in observer.spans}
        assert "resilience/price" in names
        assert "resilience/crash" in names

        assert lit.trace.canonical_json() == dark.trace.canonical_json()
        assert lit.report.runtime_seconds == dark.report.runtime_seconds
        assert lit.report.energy_joules == dark.report.energy_joules
        assert (
            lit.report.recovery.replayed_supersteps
            == dark.report.recovery.replayed_supersteps
        )
        # If the supervisor fired, the spliced continuation must match too.
        assert (lit.rebalanced_trace is None) == (
            dark.rebalanced_trace is None
        )
        if lit.rebalanced_trace is not None:
            assert (
                lit.rebalanced_trace.canonical_json()
                == dark.rebalanced_trace.canonical_json()
            )

    def test_repeated_instrumented_runs_identical_spans(self, graph):
        """Spans use the simulated clock, so runs reproduce exactly."""
        a, b = Observer(), Observer()
        with enabled(a):
            self._run(graph)
        with enabled(b):
            self._run(graph)
        assert [s.to_jsonable() for s in a.spans] == [
            s.to_jsonable() for s in b.spans
        ]
        assert a.metrics.to_json() == b.metrics.to_json()
