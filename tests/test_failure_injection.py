"""Failure-injection tests: every subsystem fails loudly and precisely.

A downstream user's most common mistakes — mismatched sizes, wrong machine
counts, corrupted pools, impossible parameters — must raise the library's
typed exceptions with actionable messages, never produce silently wrong
results.
"""

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.core.ccr import CCRPool, CCRTable
from repro.core.estimators import ProxyCCREstimator
from repro.engine.distributed_graph import DistributedGraph
from repro.engine.report import simulate_execution
from repro.engine.trace import ExecutionTrace, SuperstepTrace, MachinePhase
from repro.cluster.perfmodel import WorkProfile
from repro.errors import (
    EngineError,
    FaultError,
    PartitionError,
    ProfilingError,
    RecoveryError,
    ReproError,
)
from repro.graph.digraph import DiGraph
from repro.partition import make_partitioner
from repro.partition.base import PartitionResult


class TestExceptionHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, ReproError) or exc is ReproError


class TestCorruptedCCRPool:
    def test_truncated_json(self):
        with pytest.raises(ProfilingError, match="malformed"):
            CCRPool.from_json('{"pagerank": {"a": 1.0')

    def test_wrong_shape_json(self):
        with pytest.raises(ProfilingError):
            CCRPool.from_json('{"pagerank": 3}')

    def test_pool_with_stale_machine_types(self):
        """A pool from another cluster fails loudly, not silently."""
        pool = CCRPool()
        pool.add(CCRTable("pagerank", {"old_machine": 1.0}))
        cluster = Cluster([get_machine("c4.xlarge")])
        with pytest.raises(ProfilingError, match="not profiled"):
            pool.get("pagerank").weights_for(cluster)


class TestMismatchedShapes:
    def test_trace_wrong_cluster_width(self, powerlaw_graph):
        part = make_partitioner("random_hash").partition(powerlaw_graph, 2)
        from repro.apps.pagerank import PageRank

        trace = PageRank(max_supersteps=1).execute(DistributedGraph(part))
        wrong = Cluster([get_machine("c4.xlarge")] * 3)
        with pytest.raises(EngineError, match="machines"):
            simulate_execution(trace, wrong)

    def test_partition_weights_wrong_length(self, powerlaw_graph):
        with pytest.raises(PartitionError, match="entries"):
            make_partitioner("hybrid").partition(powerlaw_graph, 3, weights=[1, 2])

    def test_assignment_forged_out_of_range(self, powerlaw_graph):
        bad = np.full(powerlaw_graph.num_edges, 9, dtype=np.int32)
        with pytest.raises(PartitionError):
            PartitionResult(powerlaw_graph, bad, 2, "forged", None)

    def test_sync_bytes_wrong_mask(self, powerlaw_graph):
        part = make_partitioner("random_hash").partition(powerlaw_graph, 2)
        dg = DistributedGraph(part)
        with pytest.raises(EngineError, match="active mask"):
            dg.sync_bytes(np.ones(10, dtype=bool), 8)


class TestImpossibleParameters:
    def test_grid_non_square(self, powerlaw_graph):
        with pytest.raises(PartitionError, match="square"):
            make_partitioner("grid").partition(powerlaw_graph, 7)

    def test_estimator_profiles_unknown_app(self):
        cluster = Cluster([get_machine("c4.xlarge")])
        est = ProxyCCREstimator()
        with pytest.raises(ValueError, match="unknown application"):
            est.weights(cluster, "quantum_walk")

    def test_zero_machines(self, powerlaw_graph):
        with pytest.raises(PartitionError):
            make_partitioner("hybrid").partition(powerlaw_graph, 0)


class TestDegenerateGraphs:
    def test_engine_on_empty_graph(self):
        from repro.apps.pagerank import PageRank

        g = DiGraph(4, np.empty(0, np.int64), np.empty(0, np.int64))
        part = PartitionResult(g, np.empty(0, np.int32), 2, "x", None)
        trace = PageRank().execute(DistributedGraph(part))
        # No edges: converges after the first apply sweep.
        assert trace.result["converged"] is True

    def test_coloring_on_edgeless_graph(self):
        from repro.apps.coloring import GraphColoring

        g = DiGraph(5, np.empty(0, np.int64), np.empty(0, np.int64))
        colors, rounds = GraphColoring().color(g)
        assert np.all(colors == 0)
        assert rounds == []

    def test_triangle_count_on_two_vertices(self):
        from repro.apps.triangle_count import TriangleCount

        g = DiGraph.from_edges([(0, 1)], num_vertices=2)
        assert TriangleCount().count_triangles(g) == 0

    def test_cc_on_all_isolated(self):
        from repro.apps.connected_components import ConnectedComponents
        from repro.engine.sync_engine import SyncEngine

        g = DiGraph(6, np.empty(0, np.int64), np.empty(0, np.int64))
        part = PartitionResult(g, np.empty(0, np.int32), 1, "x", None)
        trace = SyncEngine().run(ConnectedComponents(), DistributedGraph(part))
        assert trace.result["num_components"] == 6


class TestFaultInjectionErrors:
    """The fault subsystem obeys the same fail-loudly contract."""

    def test_recovery_error_is_fault_error(self):
        assert issubclass(FaultError, ReproError)
        assert issubclass(RecoveryError, FaultError)

    def test_malformed_schedule_raises_fault_error(self):
        from repro.faults.schedule import FaultSchedule

        with pytest.raises(FaultError, match="malformed"):
            FaultSchedule.from_json("not json at all")

    def test_schedule_for_wrong_cluster_fails_loudly(self, powerlaw_graph):
        """A scenario targeting a machine the cluster lacks never prices."""
        from repro.apps.pagerank import PageRank
        from repro.engine.resilient import simulate_resilient_execution
        from repro.faults.schedule import CrashFault, FaultSchedule

        part = make_partitioner("random_hash").partition(powerlaw_graph, 2)
        trace = PageRank(max_supersteps=3).execute(DistributedGraph(part))
        cluster = Cluster([get_machine("c4.xlarge")] * 2)
        sched = FaultSchedule(crashes=(CrashFault(0, machine=5),))
        with pytest.raises(FaultError, match="slot 5"):
            simulate_resilient_execution(trace, cluster, schedule=sched)

    def test_exhausted_retries_catchable_as_fault_error(self, powerlaw_graph):
        from repro.apps.pagerank import PageRank
        from repro.engine.resilient import simulate_resilient_execution
        from repro.faults.checkpoint import RetryPolicy
        from repro.faults.schedule import CrashFault, FaultSchedule

        part = make_partitioner("random_hash").partition(powerlaw_graph, 2)
        trace = PageRank(max_supersteps=5).execute(DistributedGraph(part))
        cluster = Cluster([get_machine("c4.xlarge")] * 2)
        sched = FaultSchedule(
            crashes=(CrashFault(superstep=1, machine=0, repeats=10),), seed=1
        )
        with pytest.raises(FaultError) as exc:
            simulate_resilient_execution(
                trace, cluster, schedule=sched, retry=RetryPolicy(max_retries=1)
            )
        assert isinstance(exc.value, RecoveryError)


class TestNumericalRobustness:
    def test_huge_weight_skew_still_valid(self, powerlaw_graph):
        r = make_partitioner("random_hash").partition(
            powerlaw_graph, 2, weights=[1e-9, 1.0]
        )
        assert r.assignment.max() <= 1
        # Virtually everything lands on the heavy machine.
        assert r.edges_per_machine()[1] > 0.99 * powerlaw_graph.num_edges

    def test_single_superstep_zero_work_machine(self):
        """Machines with zero phases-work still get timed and powered."""
        cluster = Cluster([get_machine("c4.xlarge")] * 2)
        t = ExecutionTrace(app="x", num_machines=2)
        t.append(
            SuperstepTrace(
                phases=[
                    MachinePhase(work=WorkProfile(flops=1e6)),
                    MachinePhase(work=WorkProfile()),
                ]
            )
        )
        report = simulate_execution(t, cluster)
        assert report.machines[1].busy_seconds == 0.0
        assert report.machines[1].energy_joules > 0.0
