"""Unit tests for repro.graph.digraph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_counts(self, tiny_graph):
        assert tiny_graph.num_vertices == 5
        assert tiny_graph.num_edges == 7

    def test_empty_graph(self):
        g = DiGraph(3, np.empty(0, np.int64), np.empty(0, np.int64))
        assert g.num_edges == 0 and g.num_vertices == 3

    def test_endpoint_out_of_range(self):
        with pytest.raises(GraphError, match="endpoints"):
            DiGraph(2, np.array([0]), np.array([5]))

    def test_negative_endpoint(self):
        with pytest.raises(GraphError):
            DiGraph(2, np.array([-1]), np.array([0]))

    def test_mismatched_lengths(self):
        with pytest.raises(GraphError, match="equal length"):
            DiGraph(3, np.array([0, 1]), np.array([2]))

    def test_negative_vertex_count(self):
        with pytest.raises(GraphError):
            DiGraph(-1, np.empty(0, np.int64), np.empty(0, np.int64))

    def test_edges_read_only(self, tiny_graph):
        src, _ = tiny_graph.edges()
        with pytest.raises(ValueError):
            src[0] = 99

    def test_edge_order_preserved(self):
        src = np.array([3, 1, 2], dtype=np.int64)
        dst = np.array([0, 0, 0], dtype=np.int64)
        g = DiGraph(4, src, dst)
        assert np.array_equal(g.src, src)
        assert np.array_equal(g.dst, dst)


class TestDegrees:
    def test_out_degrees(self, tiny_graph):
        # edges: 0->1, 0->2, 0->3, 1->2, 2->3, 3->0, 0->1 (parallel)
        assert tiny_graph.out_degrees.tolist() == [4, 1, 1, 1, 0]

    def test_in_degrees(self, tiny_graph):
        assert tiny_graph.in_degrees.tolist() == [1, 2, 2, 2, 0]

    def test_total_degrees(self, tiny_graph):
        assert tiny_graph.degrees.tolist() == [5, 3, 3, 3, 0]

    def test_degree_sums_equal_edges(self, powerlaw_graph):
        assert powerlaw_graph.out_degrees.sum() == powerlaw_graph.num_edges
        assert powerlaw_graph.in_degrees.sum() == powerlaw_graph.num_edges


class TestNeighbors:
    def test_out_neighbors_with_multiplicity(self, tiny_graph):
        assert sorted(tiny_graph.out_neighbors(0).tolist()) == [1, 1, 2, 3]

    def test_in_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.in_neighbors(3).tolist()) == [0, 2]

    def test_isolated_vertex(self, tiny_graph):
        assert tiny_graph.out_neighbors(4).size == 0
        assert tiny_graph.in_neighbors(4).size == 0

    def test_vertex_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.out_neighbors(5)

    def test_csr_consistent_with_edges(self, powerlaw_graph):
        g = powerlaw_graph
        v = int(np.argmax(g.out_degrees))
        expected = sorted(g.dst[g.src == v].tolist())
        assert sorted(g.out_neighbors(v).tolist()) == expected


class TestDerivedGraphs:
    def test_reverse_swaps_degrees(self, tiny_graph):
        r = tiny_graph.reverse()
        assert np.array_equal(r.out_degrees, tiny_graph.in_degrees)
        assert np.array_equal(r.in_degrees, tiny_graph.out_degrees)

    def test_reverse_involution(self, tiny_graph):
        assert tiny_graph.reverse().reverse() == tiny_graph

    def test_deduplicate_removes_parallel(self, tiny_graph):
        d = tiny_graph.deduplicate()
        assert d.num_edges == 6
        pairs = set(zip(d.src.tolist(), d.dst.tolist()))
        assert len(pairs) == d.num_edges

    def test_without_self_loops(self):
        g = DiGraph.from_edges([(0, 0), (0, 1), (1, 1)], num_vertices=2)
        clean = g.without_self_loops()
        assert clean.num_edges == 1
        assert (clean.src[0], clean.dst[0]) == (0, 1)


class TestInterop:
    def test_from_edges_infers_vertices(self):
        g = DiGraph.from_edges([(0, 5)])
        assert g.num_vertices == 6

    def test_from_edges_bad_shape(self):
        with pytest.raises(GraphError):
            DiGraph.from_edges(np.zeros((2, 3), dtype=np.int64))

    def test_to_networkx_roundtrip_counts(self, tiny_graph):
        nxg = tiny_graph.to_networkx()
        assert nxg.number_of_nodes() == tiny_graph.num_vertices
        assert nxg.number_of_edges() == tiny_graph.num_edges

    def test_iter_edges(self, ring_graph):
        edges = list(ring_graph.iter_edges())
        assert edges[0] == (0, 1) and len(edges) == 8

    def test_equality(self, tiny_graph):
        other = DiGraph(5, tiny_graph.src.copy(), tiny_graph.dst.copy())
        assert tiny_graph == other

    def test_inequality_different_order(self):
        a = DiGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        b = DiGraph.from_edges([(1, 2), (0, 1)], num_vertices=3)
        assert a != b

    def test_unhashable(self, tiny_graph):
        with pytest.raises(TypeError):
            hash(tiny_graph)

    def test_repr(self, tiny_graph):
        assert "num_vertices=5" in repr(tiny_graph)

    def test_footprint_bytes(self, tiny_graph):
        assert tiny_graph.footprint_bytes == 7 * 2 * 8
