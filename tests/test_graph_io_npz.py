"""Unit tests for the binary (.npz) graph serialisation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.io import read_npz, write_npz


def test_roundtrip(tmp_path, powerlaw_graph):
    path = tmp_path / "g.npz"
    write_npz(powerlaw_graph, path)
    assert read_npz(path) == powerlaw_graph


def test_roundtrip_preserves_isolated_vertices(tmp_path):
    from repro.graph.digraph import DiGraph

    g = DiGraph.from_edges([(0, 1)], num_vertices=10)
    path = tmp_path / "g.npz"
    write_npz(g, path)
    assert read_npz(path).num_vertices == 10


def test_roundtrip_empty_graph(tmp_path):
    from repro.graph.digraph import DiGraph

    g = DiGraph(3, np.empty(0, np.int64), np.empty(0, np.int64))
    path = tmp_path / "g.npz"
    write_npz(g, path)
    back = read_npz(path)
    assert back.num_vertices == 3 and back.num_edges == 0


def test_foreign_archive_rejected(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, something=np.arange(3))
    with pytest.raises(GraphFormatError, match="not a repro graph archive"):
        read_npz(path)
