"""Unit tests for repro.service.breaker (per-machine circuit breakers)."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    BreakerPolicy,
    CircuitBreaker,
)


def make_breaker(**policy_kwargs):
    defaults = dict(failure_threshold=3, cooldown_s=10.0)
    defaults.update(policy_kwargs)
    return CircuitBreaker(machine=0, policy=BreakerPolicy(**defaults))


class TestPolicyValidation:
    def test_threshold_below_one_rejected(self):
        with pytest.raises(ServiceError, match="failure_threshold"):
            BreakerPolicy(failure_threshold=0)

    def test_zero_cooldown_rejected(self):
        with pytest.raises(ServiceError, match="cooldown_s"):
            BreakerPolicy(cooldown_s=0.0)

    def test_cooldown_factor_below_one_rejected(self):
        with pytest.raises(ServiceError, match="cooldown_factor"):
            BreakerPolicy(cooldown_factor=0.5)

    def test_max_cooldown_below_cooldown_rejected(self):
        with pytest.raises(ServiceError, match="max_cooldown_s"):
            BreakerPolicy(cooldown_s=30.0, max_cooldown_s=10.0)

    def test_zero_open_weight_rejected(self):
        # A zero weight would be rejected by normalize_weights downstream.
        with pytest.raises(ServiceError, match="open_weight"):
            BreakerPolicy(open_weight=0.0)

    def test_half_open_weight_above_one_rejected(self):
        with pytest.raises(ServiceError, match="half_open_weight"):
            BreakerPolicy(half_open_weight=1.5)


class TestStateMachine:
    def test_starts_closed_with_unit_weight(self):
        breaker = make_breaker()
        assert breaker.state == STATE_CLOSED
        assert breaker.weight_multiplier() == 1.0

    def test_trips_open_at_threshold(self):
        breaker = make_breaker(failure_threshold=3)
        events = []
        breaker.record_failure(1.0, "crash", events)
        breaker.record_failure(2.0, "crash", events)
        assert breaker.state == STATE_CLOSED
        breaker.record_failure(3.0, "crash", events)
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1
        assert len(events) == 1
        assert events[0].from_state == STATE_CLOSED
        assert events[0].to_state == STATE_OPEN
        assert events[0].time_s == 3.0

    def test_success_resets_consecutive_failures(self):
        breaker = make_breaker(failure_threshold=3)
        events = []
        breaker.record_failure(1.0, "crash", events)
        breaker.record_failure(2.0, "crash", events)
        breaker.record_success(2.5, events)
        breaker.record_failure(3.0, "crash", events)
        breaker.record_failure(4.0, "crash", events)
        assert breaker.state == STATE_CLOSED

    def test_half_open_after_cooldown(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=10.0)
        events = []
        breaker.record_failure(0.0, "crash", events)
        breaker.refresh(5.0, events)
        assert breaker.state == STATE_OPEN
        breaker.refresh(10.0, events)
        assert breaker.state == STATE_HALF_OPEN
        assert events[-1].reason == "cooldown elapsed"

    def test_probe_success_closes_and_resets_cooldown(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=10.0,
                               cooldown_factor=2.0)
        events = []
        breaker.record_failure(0.0, "crash", events)
        breaker.refresh(10.0, events)
        breaker.record_success(11.0, events)
        assert breaker.state == STATE_CLOSED
        assert breaker.current_cooldown_s == 10.0
        assert events[-1].to_state == STATE_CLOSED

    def test_probe_failure_reopens_with_longer_cooldown(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=10.0,
                               cooldown_factor=2.0, max_cooldown_s=600.0)
        events = []
        breaker.record_failure(0.0, "crash", events)
        breaker.refresh(10.0, events)
        breaker.record_failure(11.0, "crash again", events)
        assert breaker.state == STATE_OPEN
        assert breaker.current_cooldown_s == 20.0
        assert breaker.open_until_s == 31.0
        assert breaker.trips == 2
        assert "probe failed" in events[-1].reason

    def test_cooldown_escalation_capped(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=10.0,
                               cooldown_factor=10.0, max_cooldown_s=50.0)
        events = []
        now = 0.0
        breaker.record_failure(now, "crash", events)
        for _ in range(4):
            now = breaker.open_until_s
            breaker.refresh(now, events)
            breaker.record_failure(now, "crash", events)
        assert breaker.current_cooldown_s == 50.0

    def test_failure_while_open_does_not_emit_event(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=100.0)
        events = []
        breaker.record_failure(0.0, "crash", events)
        n = len(events)
        breaker.record_failure(1.0, "crash", events)
        assert len(events) == n
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1

    def test_weight_multiplier_per_state(self):
        policy = BreakerPolicy(failure_threshold=1, cooldown_s=10.0,
                               open_weight=1e-3, half_open_weight=0.25)
        breaker = CircuitBreaker(machine=0, policy=policy)
        events = []
        breaker.record_failure(0.0, "crash", events)
        assert breaker.weight_multiplier() == 1e-3
        breaker.refresh(10.0, events)
        assert breaker.weight_multiplier() == 0.25
        breaker.record_success(11.0, events)
        assert breaker.weight_multiplier() == 1.0


class TestBoard:
    def test_rejects_empty_cluster(self):
        with pytest.raises(ServiceError, match="num_machines"):
            BreakerBoard(0, BreakerPolicy())

    def test_multipliers_vector_tracks_states(self):
        board = BreakerBoard(3, BreakerPolicy(failure_threshold=1,
                                              cooldown_s=10.0))
        board.record_failures((1,), 0.0, "crash")
        np.testing.assert_allclose(board.multipliers(), [1.0, 1e-3, 1.0])
        assert board.states() == (STATE_CLOSED, STATE_OPEN, STATE_CLOSED)
        assert board.any_discounted()

    def test_multipliers_always_positive(self):
        board = BreakerBoard(2, BreakerPolicy(failure_threshold=1))
        board.record_failures((0, 1), 0.0, "crash")
        assert (board.multipliers() > 0.0).all()

    def test_out_of_range_slots_ignored(self):
        board = BreakerBoard(2, BreakerPolicy(failure_threshold=1))
        board.record_failures((-1, 5), 0.0, "crash")
        assert board.states() == (STATE_CLOSED, STATE_CLOSED)
        assert board.events == []

    def test_duplicate_slots_counted_once(self):
        board = BreakerBoard(1, BreakerPolicy(failure_threshold=2))
        board.record_failures((0, 0, 0), 0.0, "crash")
        assert board.breakers[0].consecutive_failures == 1

    def test_full_cycle_event_log(self):
        board = BreakerBoard(2, BreakerPolicy(failure_threshold=2,
                                              cooldown_s=5.0))
        board.record_failures((1,), 0.0, "crash")
        board.record_failures((1,), 1.0, "crash")
        board.refresh(6.0)
        board.record_successes((0, 1), 7.0)
        transitions = [(e.from_state, e.to_state) for e in board.events]
        assert transitions == [
            (STATE_CLOSED, STATE_OPEN),
            (STATE_OPEN, STATE_HALF_OPEN),
            (STATE_HALF_OPEN, STATE_CLOSED),
        ]
        assert board.total_trips() == 1
        assert not board.any_discounted()

    def test_to_jsonable_shape(self):
        board = BreakerBoard(2, BreakerPolicy(failure_threshold=1))
        board.record_failures((0,), 3.0, "crash")
        payload = board.to_jsonable()
        assert payload["states"] == [STATE_OPEN, STATE_CLOSED]
        assert payload["trips"] == 1
        assert payload["events"][0]["machine"] == 0
        assert payload["events"][0]["time_s"] == 3.0
