"""Unit tests for repro.powerlaw.alpha_solver (Eq. 7 Newton solve)."""

import pytest

from repro.errors import ConvergenceError
from repro.powerlaw.alpha_solver import expected_degree, solve_alpha
from repro.powerlaw.distribution import PowerLawDistribution


class TestExpectedDegree:
    def test_matches_distribution_mean(self):
        assert expected_degree(2.1, 500) == pytest.approx(
            PowerLawDistribution(2.1, 500).mean
        )

    def test_decreasing_in_alpha(self):
        assert expected_degree(1.9, 1000) > expected_degree(2.4, 1000)

    def test_increasing_in_truncation(self):
        # Heavier tails contribute more mean with a larger cutoff.
        assert expected_degree(2.0, 10_000) > expected_degree(2.0, 100)


class TestSolveAlpha:
    @pytest.mark.parametrize("alpha", [1.9, 2.1, 2.4, 3.0])
    def test_roundtrip(self, alpha):
        """Recover alpha from the mean it induces (the paper's use case)."""
        d = 5000
        target = expected_degree(alpha, d)
        assert solve_alpha(target, d) == pytest.approx(alpha, abs=1e-6)

    def test_table2_regime(self):
        """amazon's |E|/|V| = 8.4 yields a natural-band exponent."""
        alpha = solve_alpha(8.398, 403_393)
        assert 1.8 < alpha < 2.1

    def test_sparse_graph_higher_alpha(self):
        assert solve_alpha(2.1, 10_000) > solve_alpha(8.4, 10_000)

    def test_unreachable_low_mean(self):
        """Truncated power laws on {1..D} cannot have mean <= 1."""
        with pytest.raises(ConvergenceError, match="achievable"):
            solve_alpha(0.9, 1000)

    def test_unreachable_high_mean(self):
        with pytest.raises(ConvergenceError, match="achievable"):
            solve_alpha(1e6, 1000)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            solve_alpha(-1.0, 100)
        with pytest.raises(ValueError):
            solve_alpha(2.0, 0)

    def test_bad_initial_guess_still_converges(self):
        target = expected_degree(2.2, 2000)
        assert solve_alpha(target, 2000, initial_guess=7.5) == pytest.approx(
            2.2, abs=1e-6
        )

    def test_result_cached(self):
        """lru_cache: identical calls return the identical float."""
        a = solve_alpha(4.376, 9999)
        b = solve_alpha(4.376, 9999)
        assert a == b
