"""Unit tests for repro.cluster.cluster."""

import pytest

from repro.cluster.catalog import get_machine, xeon_small
from repro.cluster.cluster import Cluster
from repro.errors import ClusterError


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([])

    def test_immutable(self, hetero_pair):
        with pytest.raises(AttributeError):
            hetero_pair.machines = ()

    def test_default_models_attached(self, hetero_pair):
        assert hetero_pair.network is not None
        assert hetero_pair.perf is not None


class TestShapeQueries:
    def test_num_machines(self, case1_like_cluster):
        assert case1_like_cluster.num_machines == 4

    def test_is_square(self, case1_like_cluster, hetero_pair):
        assert case1_like_cluster.is_square
        assert not hetero_pair.is_square

    def test_is_homogeneous(self, hetero_pair):
        assert not hetero_pair.is_homogeneous
        homo = Cluster([get_machine("c4.xlarge")] * 3)
        assert homo.is_homogeneous

    def test_compute_threads(self, case1_like_cluster):
        assert case1_like_cluster.compute_threads() == (6, 6, 6, 6)


class TestGrouping:
    def test_groups_by_type(self, case1_like_cluster):
        groups = case1_like_cluster.groups()
        assert groups == {"m4.2xlarge": [0, 1], "c4.2xlarge": [2, 3]}

    def test_representatives_one_per_type(self, case1_like_cluster):
        reps = case1_like_cluster.representatives()
        assert set(reps) == {"m4.2xlarge", "c4.2xlarge"}

    def test_single_type_single_group(self):
        c = Cluster([get_machine("c4.xlarge")] * 5)
        assert len(c.groups()) == 1
        assert len(c.groups()["c4.xlarge"]) == 5


class TestCost:
    def test_hourly_cost_sums(self):
        c = Cluster([get_machine("c4.xlarge"), get_machine("c4.2xlarge")])
        assert c.hourly_cost() == pytest.approx(0.209 + 0.419)

    def test_unpriced_machine_rejected(self):
        c = Cluster([get_machine("c4.xlarge"), xeon_small()])
        with pytest.raises(ClusterError, match="no price"):
            c.hourly_cost()


def test_repr_counts_types(case1_like_cluster):
    assert "2x m4.2xlarge" in repr(case1_like_cluster)
    assert "2x c4.2xlarge" in repr(case1_like_cluster)
