"""Unit tests for repro.graph.properties."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.properties import (
    average_degree,
    degree_distribution,
    degree_histogram,
    graph_summary,
)


class TestAverageDegree:
    def test_value(self, tiny_graph):
        assert average_degree(tiny_graph) == pytest.approx(7 / 5)

    def test_empty_graph_raises(self):
        g = DiGraph(0, np.empty(0, np.int64), np.empty(0, np.int64))
        with pytest.raises(GraphError):
            average_degree(g)


class TestDegreeHistogram:
    def test_total(self, tiny_graph):
        hist = degree_histogram(tiny_graph, kind="total")
        # degrees: [5, 3, 3, 3, 0]
        assert hist[0] == 1 and hist[3] == 3 and hist[5] == 1

    def test_out(self, tiny_graph):
        hist = degree_histogram(tiny_graph, kind="out")
        assert hist[4] == 1  # the hub

    def test_in(self, tiny_graph):
        hist = degree_histogram(tiny_graph, kind="in")
        assert hist[2] == 3

    def test_bad_kind(self, tiny_graph):
        with pytest.raises(ValueError):
            degree_histogram(tiny_graph, kind="sideways")

    def test_sums_to_vertices(self, powerlaw_graph):
        assert degree_histogram(powerlaw_graph).sum() == powerlaw_graph.num_vertices


class TestDegreeDistribution:
    def test_probabilities_sum_to_one(self, powerlaw_graph):
        _, probs = degree_distribution(powerlaw_graph)
        assert probs.sum() == pytest.approx(1.0)

    def test_zero_degree_dropped(self, tiny_graph):
        degrees, _ = degree_distribution(tiny_graph)
        assert 0 not in degrees

    def test_no_positive_degrees_raises(self):
        g = DiGraph(3, np.empty(0, np.int64), np.empty(0, np.int64))
        with pytest.raises(GraphError):
            degree_distribution(g)


class TestGraphSummary:
    def test_fields(self, tiny_graph):
        s = graph_summary(tiny_graph)
        assert s.num_vertices == 5
        assert s.num_edges == 7
        assert s.max_out_degree == 4
        assert s.max_in_degree == 2
        assert s.self_loops == 0
        assert s.footprint_mb == pytest.approx(7 * 16 / 1e6)

    def test_self_loop_count(self):
        g = DiGraph.from_edges([(0, 0), (1, 1), (0, 1)], num_vertices=2)
        assert graph_summary(g).self_loops == 2
