"""Algorithm-specific partitioner behaviour (Section II of the paper)."""

import math

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph
from repro.partition import (
    GingerPartitioner,
    GridPartitioner,
    HybridPartitioner,
    ObliviousPartitioner,
    RandomHashPartitioner,
    replication_factor,
)
from repro.utils.rng import hash_edges, hash_to_unit


class TestRandomHash:
    def test_probability_follows_weights(self, powerlaw_graph_large):
        """Fig. 4: receive probability strictly follows the weight vector."""
        w = [0.1, 0.2, 0.3, 0.4]
        r = RandomHashPartitioner(seed=0).partition(powerlaw_graph_large, 4, w)
        shares = r.edges_per_machine() / powerlaw_graph_large.num_edges
        assert np.allclose(shares, w, atol=0.02)

    def test_assignment_is_pure_function_of_edge(self):
        """Identical endpoint pairs always land on the same machine."""
        g = DiGraph.from_edges([(0, 1), (2, 3), (0, 1)], num_vertices=4)
        r = RandomHashPartitioner(seed=1).partition(g, 4)
        assert r.assignment[0] == r.assignment[2]

    def test_seed_changes_placement(self, powerlaw_graph):
        a = RandomHashPartitioner(seed=0).partition(powerlaw_graph, 4)
        b = RandomHashPartitioner(seed=1).partition(powerlaw_graph, 4)
        assert not np.array_equal(a.assignment, b.assignment)


class TestOblivious:
    def test_lower_replication_than_random(self, powerlaw_graph_large):
        rand = RandomHashPartitioner(seed=1).partition(powerlaw_graph_large, 4)
        obl = ObliviousPartitioner(seed=1).partition(powerlaw_graph_large, 4)
        assert replication_factor(obl) < replication_factor(rand)

    def test_chunk_size_one_is_sequential_greedy(self, tiny_graph):
        r = ObliviousPartitioner(seed=0, chunk_size=1).partition(tiny_graph, 2)
        assert r.assignment.size == tiny_graph.num_edges

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ObliviousPartitioner(chunk_size=0)

    def test_locality_groups_shared_endpoints(self):
        """Consecutive edges sharing endpoints co-locate when balanced."""
        g = DiGraph.from_edges(
            [(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)], num_vertices=8
        )
        r = ObliviousPartitioner(seed=0, chunk_size=1).partition(g, 2)
        first = set(r.assignment[:3].tolist())
        second = set(r.assignment[3:].tolist())
        assert len(first) == 1 and len(second) == 1


class TestGrid:
    def test_requires_square_machine_count(self, powerlaw_graph):
        with pytest.raises(PartitionError, match="square"):
            GridPartitioner(seed=0).partition(powerlaw_graph, 6)

    def test_nine_machines_ok(self, powerlaw_graph):
        r = GridPartitioner(seed=0).partition(powerlaw_graph, 9)
        assert r.assignment.max() < 9

    def test_vertex_replicas_bounded_by_grid_constraint(self, powerlaw_graph_large):
        """A vertex's replicas stay within its row+column: <= 2*sqrt(p)-1."""
        p = 9
        r = GridPartitioner(seed=0).partition(powerlaw_graph_large, p)
        g = powerlaw_graph_large
        src, dst = g.edges()
        bound = 2 * math.isqrt(p) - 1
        present = np.zeros((g.num_vertices, p), dtype=bool)
        present[src, r.assignment] = True
        present[dst, r.assignment] = True
        assert present.sum(axis=1).max() <= bound

    def test_lower_replication_than_random(self, powerlaw_graph_large):
        rand = RandomHashPartitioner(seed=1).partition(powerlaw_graph_large, 9)
        grid = GridPartitioner(seed=1).partition(powerlaw_graph_large, 9)
        assert replication_factor(grid) < replication_factor(rand)


class TestHybrid:
    def test_low_degree_vertices_have_no_in_edge_mirrors(self, powerlaw_graph_large):
        """Phase 1 groups all in-edges of low-degree vertices together."""
        g = powerlaw_graph_large
        r = HybridPartitioner(seed=3, threshold=100).partition(g, 4)
        src, dst = g.edges()
        low = g.in_degrees <= 100
        for v in np.nonzero(low & (g.in_degrees > 1))[0][:50]:
            machines = np.unique(r.assignment[dst == v])
            assert machines.size == 1, f"vertex {v} in-edges split"

    def test_high_degree_reassigned_by_source(self):
        """In-edges of a hub follow their sources, bounding its mirrors."""
        hub = 0
        n = 500
        src = np.arange(1, n, dtype=np.int64)
        dst = np.zeros(n - 1, dtype=np.int64)
        g = DiGraph(n, src, dst)
        r = HybridPartitioner(seed=1, threshold=10).partition(g, 4)
        # With 499 in-edges and threshold 10, the hub's edges spread.
        assert np.unique(r.assignment).size == 4

    def test_threshold_controls_split(self, powerlaw_graph_large):
        tight = HybridPartitioner(seed=1, threshold=5).partition(
            powerlaw_graph_large, 4
        )
        loose = HybridPartitioner(seed=1, threshold=10_000).partition(
            powerlaw_graph_large, 4
        )
        # With an unreachable threshold, phase 2 never fires: pure edge cut.
        assert not np.array_equal(tight.assignment, loose.assignment)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            HybridPartitioner(threshold=0)


class TestGinger:
    def test_replication_not_worse_than_hybrid(self, powerlaw_graph_large):
        hyb = HybridPartitioner(seed=2).partition(powerlaw_graph_large, 4)
        gin = GingerPartitioner(seed=2).partition(powerlaw_graph_large, 4)
        assert replication_factor(gin) <= replication_factor(hyb) + 0.05

    def test_low_degree_groups_move_atomically(self, powerlaw_graph_large):
        g = powerlaw_graph_large
        r = GingerPartitioner(seed=2, threshold=100).partition(g, 4)
        src, dst = g.edges()
        low = g.in_degrees <= 100
        for v in np.nonzero(low & (g.in_degrees > 1))[0][:50]:
            assert np.unique(r.assignment[dst == v]).size == 1

    def test_balance_lambda_zero_maximises_locality(self, powerlaw_graph):
        free = GingerPartitioner(seed=1, balance_lambda=0.0).partition(
            powerlaw_graph, 4
        )
        tight = GingerPartitioner(seed=1, balance_lambda=4.0).partition(
            powerlaw_graph, 4
        )
        from repro.partition.metrics import weighted_imbalance

        assert weighted_imbalance(tight) <= weighted_imbalance(free) + 1e-9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GingerPartitioner(balance_lambda=-1)
        with pytest.raises(ValueError):
            GingerPartitioner(chunk_size=0)
