"""Unit tests for repro.engine.distributed_graph (masters/mirrors)."""

import numpy as np
import pytest

from repro.engine.distributed_graph import DistributedGraph
from repro.errors import EngineError
from repro.graph.digraph import DiGraph
from repro.partition import RandomHashPartitioner
from repro.partition.base import PartitionResult


def manual(graph, assignment, m):
    return DistributedGraph(
        PartitionResult(graph, np.asarray(assignment, np.int32), m, "manual", None)
    )


@pytest.fixture
def dgraph(powerlaw_graph):
    part = RandomHashPartitioner(seed=1).partition(powerlaw_graph, 4)
    return DistributedGraph(part)


class TestLocalEdges:
    def test_partition_of_edges(self, dgraph, powerlaw_graph):
        total = sum(dgraph.local_edge_count(i) for i in range(4))
        assert total == powerlaw_graph.num_edges

    def test_local_arrays_match_assignment(self, dgraph):
        for m in range(4):
            ids = dgraph.edge_ids[m]
            assert np.all(dgraph.partition.assignment[ids] == m)
            assert np.array_equal(
                dgraph.local_src[m], dgraph.graph.src[ids]
            )


class TestPresenceAndMasters:
    def test_presence_iff_incident_edge(self):
        g = DiGraph.from_edges([(0, 1), (2, 3)], num_vertices=5)
        dg = manual(g, [0, 1], 2)
        assert dg.presence[0].tolist() == [True, False]
        assert dg.presence[3].tolist() == [False, True]
        assert dg.presence[4].tolist() == [False, False]

    def test_master_is_a_replica(self, dgraph):
        connected = dgraph.replica_counts > 0
        ids = np.nonzero(connected)[0]
        masters = dgraph.master[ids]
        assert np.all(dgraph.presence[ids, masters])

    def test_isolated_vertex_has_no_master(self):
        g = DiGraph.from_edges([(0, 1)], num_vertices=3)
        dg = manual(g, [0], 2)
        assert dg.master[2] == -1

    def test_masters_partition_connected_vertices(self, dgraph):
        count = sum(dgraph.masters_on(i).size for i in range(4))
        assert count == int(np.count_nonzero(dgraph.replica_counts > 0))

    def test_master_deterministic(self, powerlaw_graph):
        part = RandomHashPartitioner(seed=1).partition(powerlaw_graph, 4)
        a = DistributedGraph(part, master_seed=5)
        b = DistributedGraph(part, master_seed=5)
        assert np.array_equal(a.master, b.master)

    def test_mirror_count(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        dg = manual(g, [0, 1], 2)
        # vertex 1 is on both machines; exactly one machine hosts its mirror.
        assert dg.mirror_count(0) + dg.mirror_count(1) == 1


class TestReplication:
    def test_single_machine_factor_one(self, powerlaw_graph):
        dg = manual(powerlaw_graph, np.zeros(powerlaw_graph.num_edges), 1)
        assert dg.replication_factor == pytest.approx(1.0)

    def test_matches_partition_metric(self, dgraph):
        from repro.partition.metrics import replication_factor

        assert dgraph.replication_factor == pytest.approx(
            replication_factor(dgraph.partition)
        )


class TestWorkingSet:
    def test_nonnegative_per_machine(self, dgraph):
        assert np.all(dgraph.working_set_mb >= 0)

    def test_empty_machine_zero(self):
        g = DiGraph.from_edges([(0, 1)], num_vertices=2)
        dg = manual(g, [0], 2)
        assert dg.working_set_mb[1] == 0.0

    def test_single_machine_holds_whole_hot_set(self, powerlaw_graph):
        whole = manual(powerlaw_graph, np.zeros(powerlaw_graph.num_edges), 1)
        assert whole.working_set_mb[0] > 0


class TestSyncBytes:
    def test_no_replicated_vertices_no_traffic(self):
        g = DiGraph.from_edges([(0, 1), (2, 3)], num_vertices=4)
        dg = manual(g, [0, 1], 2)
        active = np.ones(4, dtype=bool)
        assert np.all(dg.sync_bytes(active, 8) == 0)

    def test_shared_vertex_generates_symmetric_traffic(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        dg = manual(g, [0, 1], 2)
        active = np.ones(3, dtype=bool)
        traffic = dg.sync_bytes(active, value_bytes=8)
        # one replicated vertex: one mirror leg + one master leg, 8 B each.
        assert traffic.sum() == pytest.approx(16.0)
        assert traffic[0] == traffic[1]

    def test_inactive_vertices_excluded(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        dg = manual(g, [0, 1], 2)
        active = np.zeros(3, dtype=bool)
        assert dg.sync_bytes(active, 8).sum() == 0.0

    def test_scales_with_value_bytes(self, dgraph):
        active = np.ones(dgraph.num_vertices, dtype=bool)
        a = dgraph.sync_bytes(active, 8).sum()
        b = dgraph.sync_bytes(active, 16).sum()
        assert b == pytest.approx(2 * a)

    def test_wrong_mask_shape(self, dgraph):
        with pytest.raises(EngineError):
            dgraph.sync_bytes(np.ones(3, dtype=bool), 8)


def test_machine_range_checks(dgraph):
    with pytest.raises(EngineError):
        dgraph.masters_on(7)
    with pytest.raises(EngineError):
        dgraph.local_edge_count(-1)
