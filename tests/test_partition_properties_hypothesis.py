"""Property-based tests covering all five partitioners (hypothesis).

Three invariants per algorithm, swept over random graphs, machine counts,
weight vectors and seeds:

1. **Validity** — every edge receives a machine id in ``[0, m)``.
2. **Determinism** — the same ``(graph, weights, seed)`` always yields the
   identical assignment, across fresh partitioner instances.
3. **Weight monotonicity** — doubling one machine's weight never decreases
   its *expected* load share (the normalised target), and on a real
   power-law graph its realised edge count does not drop materially.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partition import PARTITIONERS, make_partitioner
from repro.powerlaw.generator import generate_power_law_graph

ALL_ALGORITHMS = tuple(PARTITIONERS)  # the paper's five, in order

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #


@st.composite
def small_graphs(draw):
    """Tiny power-law graphs: realistic skew, milliseconds to partition."""
    n = draw(st.integers(min_value=16, max_value=120))
    alpha = draw(st.floats(min_value=1.8, max_value=2.6))
    seed = draw(st.integers(min_value=0, max_value=9999))
    return generate_power_law_graph(n, alpha, seed=seed)


def machine_counts(algorithm: str):
    """Grid requires a square machine count; the rest take any."""
    if algorithm == "grid":
        return st.sampled_from([1, 4, 9])
    return st.integers(min_value=1, max_value=8)


def weight_vectors(m: int):
    return st.lists(
        st.floats(min_value=0.1, max_value=5.0), min_size=m, max_size=m
    )


seeds = st.integers(min_value=0, max_value=2**31)


# ---------------------------------------------------------------------- #
# Properties
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
class TestPartitionerProperties:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_every_edge_gets_a_valid_machine(self, algorithm, data):
        graph = data.draw(small_graphs())
        m = data.draw(machine_counts(algorithm))
        weights = data.draw(weight_vectors(m))
        seed = data.draw(seeds)

        result = make_partitioner(algorithm, seed=seed).partition(
            graph, m, weights=weights
        )

        assert result.assignment.shape == (graph.num_edges,)
        assert result.assignment.dtype == np.int32
        assert result.assignment.min() >= 0
        assert result.assignment.max() < m
        assert result.edges_per_machine().sum() == graph.num_edges

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_assignment(self, algorithm, data):
        graph = data.draw(small_graphs())
        m = data.draw(machine_counts(algorithm))
        weights = data.draw(weight_vectors(m))
        seed = data.draw(seeds)

        first = make_partitioner(algorithm, seed=seed).partition(
            graph, m, weights=weights
        )
        second = make_partitioner(algorithm, seed=seed).partition(
            graph, m, weights=weights
        )

        assert np.array_equal(first.assignment, second.assignment)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_doubling_weight_never_decreases_expected_share(
        self, algorithm, data
    ):
        graph = data.draw(small_graphs())
        m = data.draw(machine_counts(algorithm))
        weights = np.asarray(data.draw(weight_vectors(m)))
        seed = data.draw(seeds)
        boosted_machine = data.draw(st.integers(0, m - 1))

        doubled = weights.copy()
        doubled[boosted_machine] *= 2.0

        base = make_partitioner(algorithm, seed=seed).partition(
            graph, m, weights=weights
        )
        boost = make_partitioner(algorithm, seed=seed).partition(
            graph, m, weights=doubled
        )

        # The normalised target share is the "expected load share": it
        # must never move against the raw-weight doubling.
        assert (
            boost.weights[boosted_machine]
            >= base.weights[boosted_machine] - 1e-12
        )
        # Everyone else's target share shrinks (or stays, when m == 1).
        others = np.arange(m) != boosted_machine
        assert np.all(boost.weights[others] <= base.weights[others] + 1e-12)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_doubling_weight_grows_realised_load(algorithm, powerlaw_graph):
    """On a real graph the realised edge count tracks the target.

    Streaming heuristics (oblivious, ginger) chase locality as well as
    balance, so the realised count is noisy; the tolerance (2 % of edges)
    only rules out the target being ignored or inverted.
    """
    m = 4
    weights = np.array([1.0, 1.0, 1.0, 1.0])
    doubled = np.array([1.0, 2.0, 1.0, 1.0])
    edges = powerlaw_graph.num_edges

    base = make_partitioner(algorithm, seed=3).partition(
        powerlaw_graph, m, weights=weights
    )
    boost = make_partitioner(algorithm, seed=3).partition(
        powerlaw_graph, m, weights=doubled
    )

    before = base.edges_per_machine()[1]
    after = boost.edges_per_machine()[1]
    assert after >= before - 0.02 * edges
