"""Unit tests for repro.core.ccr (Eq. 1 and the CCR pool)."""

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.core.ccr import CCRPool, CCRTable, ccr_from_times
from repro.errors import ProfilingError


class TestCcrFromTimes:
    def test_eq1_definition(self):
        """CCR[i,j] = max_j(t) / t: slowest anchors at 1."""
        ccr = ccr_from_times({"slow": 10.0, "fast": 5.0})
        assert ccr["slow"] == 1.0
        assert ccr["fast"] == 2.0

    def test_paper_example(self):
        """Machine A twice as fast as baseline B -> 2 : 1 (Sec. III-B)."""
        ccr = ccr_from_times({"B": 4.0, "A": 2.0})
        assert ccr["A"] / ccr["B"] == pytest.approx(2.0)

    def test_graph_size_invariance(self):
        """Scaling all times (a bigger graph) leaves CCR unchanged."""
        small = ccr_from_times({"a": 1.0, "b": 3.0})
        large = ccr_from_times({"a": 10.0, "b": 30.0})
        assert small == large

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            ccr_from_times({})

    def test_nonpositive_time_rejected(self):
        with pytest.raises(ProfilingError):
            ccr_from_times({"a": 0.0})


class TestCCRTable:
    def test_ratio_lookup(self):
        t = CCRTable("pagerank", {"a": 1.0, "b": 2.5})
        assert t.ratio("b") == 2.5

    def test_missing_machine_type(self):
        t = CCRTable("pagerank", {"a": 1.0})
        with pytest.raises(ProfilingError, match="not profiled"):
            t.ratio("z")

    def test_sub_one_ratio_rejected(self):
        with pytest.raises(ProfilingError):
            CCRTable("x", {"a": 0.5})

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            CCRTable("x", {})

    def test_weights_for_cluster_repeat_types(self):
        """Every instance of a type gets the type's ratio (Sec. III-B)."""
        t = CCRTable("x", {"m4.2xlarge": 1.0, "c4.2xlarge": 1.2})
        cluster = Cluster(
            [get_machine("m4.2xlarge")] * 2 + [get_machine("c4.2xlarge")] * 2
        )
        w = t.weights_for(cluster)
        assert w.sum() == pytest.approx(1.0)
        assert w[2] / w[0] == pytest.approx(1.2)
        assert w[0] == w[1] and w[2] == w[3]

    def test_weights_missing_type(self):
        t = CCRTable("x", {"m4.2xlarge": 1.0})
        cluster = Cluster([get_machine("c4.xlarge")])
        with pytest.raises(ProfilingError):
            t.weights_for(cluster)


class TestCCRPool:
    def test_add_get(self):
        pool = CCRPool()
        pool.add(CCRTable("pagerank", {"a": 1.0}))
        assert pool.get("pagerank").app == "pagerank"
        assert "pagerank" in pool
        assert len(pool) == 1

    def test_missing_app(self):
        with pytest.raises(ProfilingError, match="no CCR profiled"):
            CCRPool().get("pagerank")

    def test_json_roundtrip(self):
        pool = CCRPool()
        pool.add(CCRTable("pagerank", {"a": 1.0, "b": 3.5}))
        pool.add(CCRTable("coloring", {"a": 1.0, "b": 2.0}))
        back = CCRPool.from_json(pool.to_json())
        assert back.get("pagerank").ratio("b") == 3.5
        assert set(back.apps()) == {"pagerank", "coloring"}

    def test_file_roundtrip(self, tmp_path):
        pool = CCRPool()
        pool.add(CCRTable("tc", {"a": 1.0, "b": 1.7}))
        path = tmp_path / "pool.json"
        pool.save(path)
        assert CCRPool.load(path).get("tc").ratio("b") == 1.7

    def test_malformed_json(self):
        with pytest.raises(ProfilingError):
            CCRPool.from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(ProfilingError):
            CCRPool.from_json("[1, 2]")
