"""Unit tests for repro.engine.accounting."""

import pytest

from repro.engine.accounting import AppCostModel
from repro.errors import EngineError


def model(**kw):
    defaults = dict(
        flops_per_edge_op=2.0,
        stream_bytes_per_edge_op=4.0,
        cacheable_bytes_per_edge_op=6.0,
        flops_per_vertex_op=8.0,
        stream_bytes_per_vertex_op=10.0,
        serial_fraction=0.1,
        serial_flops_per_superstep=100.0,
    )
    defaults.update(kw)
    return AppCostModel(**defaults)


class TestWork:
    def test_edge_and_vertex_costs(self):
        w = model(serial_fraction=0.0, serial_flops_per_superstep=0.0).work(
            edge_ops=10, vertex_ops=5
        )
        assert w.flops == pytest.approx(10 * 2 + 5 * 8)
        assert w.streaming_bytes == pytest.approx(10 * 4 + 5 * 10)
        assert w.cacheable_bytes == pytest.approx(10 * 6)

    def test_serial_fraction_split(self):
        w = model(serial_flops_per_superstep=0.0).work(edge_ops=100, vertex_ops=0)
        total = 100 * 2
        assert w.serial_flops == pytest.approx(0.1 * total)
        assert w.flops == pytest.approx(0.9 * total)
        assert w.flops + w.serial_flops == pytest.approx(total)

    def test_fixed_serial_added(self):
        w = model().work(edge_ops=0, vertex_ops=0)
        assert w.serial_flops == pytest.approx(100.0)

    def test_fixed_serial_excluded_on_request(self):
        w = model(serial_fraction=0.0).work(
            edge_ops=0, vertex_ops=0, include_serial=False
        )
        assert w.serial_flops == 0.0

    def test_working_set_passthrough(self):
        assert model().work(1, 1, working_set_mb=7.5).working_set_mb == 7.5

    def test_negative_ops_rejected(self):
        with pytest.raises(EngineError):
            model().work(edge_ops=-1, vertex_ops=0)


class TestValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(EngineError):
            model(flops_per_edge_op=-1)

    def test_serial_fraction_bounds(self):
        with pytest.raises(EngineError):
            model(serial_fraction=1.0)
        with pytest.raises(EngineError):
            model(serial_fraction=-0.1)

    def test_value_bytes_minimum(self):
        with pytest.raises(EngineError):
            model(value_bytes=0)

    def test_negative_sync_rounds(self):
        with pytest.raises(EngineError):
            model(sync_rounds=-1)

    def test_frozen(self):
        m = model()
        with pytest.raises(Exception):
            m.value_bytes = 99
