"""Unit tests for repro.apps.registry."""

import pytest

from repro.apps.registry import APP_FACTORIES, DEFAULT_APPS, app_names, make_app
from repro.engine.vertex_program import GraphApplication


def test_default_apps_are_the_papers_four():
    assert DEFAULT_APPS == (
        "pagerank",
        "coloring",
        "connected_components",
        "triangle_count",
    )


def test_all_registered_apps_instantiable():
    for name in app_names():
        app = make_app(name)
        assert isinstance(app, GraphApplication)
        assert app.name == name


def test_kwargs_forwarded():
    app = make_app("pagerank", damping=0.5)
    assert app.damping == 0.5


def test_unknown_app():
    with pytest.raises(ValueError, match="unknown application"):
        make_app("bfs")


def test_cost_models_distinct():
    """Application diversity (Fig. 2) requires distinct cost profiles."""
    costs = {name: make_app(name).cost for name in app_names()}
    intensities = {
        n: (c.stream_bytes_per_edge_op + c.cacheable_bytes_per_edge_op)
        / c.flops_per_edge_op
        for n, c in costs.items()
    }
    # PageRank is the most memory-bound of the suite.
    assert intensities["pagerank"] == max(intensities.values())
    assert len(set(intensities.values())) == len(intensities)
