"""Unit tests for repro.faults.supervisor (straggler detection)."""

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.core.online import OnlineCCRMonitor
from repro.core.profiler import ProxyProfiler
from repro.core.proxy import ProxySet
from repro.errors import FaultError
from repro.faults.supervisor import Supervisor


def feed(sup, observations):
    for step, busy in enumerate(observations):
        sup.observe(step, np.asarray(busy, dtype=float))


BALANCED = [1.0, 1.0, 1.0, 1.0]


def degraded(slot, factor):
    busy = list(BALANCED)
    busy[slot] *= factor
    return busy


class TestParameters:
    def test_threshold_must_exceed_one(self):
        with pytest.raises(FaultError):
            Supervisor(threshold=1.0)

    def test_patience_positive(self):
        with pytest.raises(FaultError):
            Supervisor(patience=0)

    def test_negative_busy_rejected(self):
        sup = Supervisor()
        with pytest.raises(FaultError):
            sup.observe(0, np.array([-1.0, 1.0]))


class TestDetection:
    def test_no_faults_no_verdict(self):
        sup = Supervisor()
        feed(sup, [BALANCED] * 20)
        assert not sup.triggered

    def test_persistent_straggler_detected(self):
        sup = Supervisor(threshold=1.5, patience=3, warmup=2)
        feed(sup, [BALANCED] * 4 + [degraded(2, 4.0)] * 5)
        assert sup.triggered
        assert sup.report.slots == (2,)
        # Estimated factor close to the injected 4x.
        assert sup.report.factors[2] == pytest.approx(4.0, rel=0.15)

    def test_patience_filters_transients(self):
        sup = Supervisor(threshold=1.5, patience=3, warmup=2)
        # Two-step blips separated by healthy steps never fire.
        blip = [degraded(1, 4.0)] * 2 + [BALANCED] * 2
        feed(sup, [BALANCED] * 2 + blip * 5)
        assert not sup.triggered

    def test_cannot_fire_during_warmup(self):
        sup = Supervisor(threshold=1.2, patience=1, warmup=4)
        feed(sup, [degraded(0, 10.0)] * 3)
        assert not sup.triggered

    def test_frontier_scaling_is_not_degradation(self):
        """A superstep where everyone does 10x the work is not a fault."""
        sup = Supervisor(threshold=1.5, patience=2, warmup=2)
        feed(sup, [BALANCED] * 3 + [[10.0] * 4] * 5)
        assert not sup.triggered

    def test_verdict_is_one_shot(self):
        sup = Supervisor(threshold=1.5, patience=2, warmup=2)
        feed(sup, [BALANCED] * 2 + [degraded(3, 4.0)] * 3)
        assert sup.triggered
        first = sup.report
        sup.observe(99, np.asarray(degraded(1, 8.0)))
        assert sup.report is first

    def test_reset_forgets_everything(self):
        sup = Supervisor(threshold=1.5, patience=2, warmup=2)
        feed(sup, [BALANCED] * 2 + [degraded(3, 4.0)] * 3)
        assert sup.triggered
        sup.reset()
        assert not sup.triggered and not sup.calibrated

    def test_slot_count_mismatch_rejected(self):
        sup = Supervisor(warmup=1)
        sup.observe(0, np.asarray(BALANCED))
        with pytest.raises(FaultError, match="slots"):
            sup.observe(1, np.array([1.0, 1.0]))


class TestActuation:
    def make_triggered(self, slot=1, factor=4.0):
        sup = Supervisor(threshold=1.5, patience=2, warmup=2)
        feed(sup, [BALANCED] * 2 + [degraded(slot, factor)] * 3)
        assert sup.triggered
        return sup

    def test_degraded_weights_discount_straggler(self):
        sup = self.make_triggered(slot=1, factor=4.0)
        w = sup.degraded_weights(np.full(4, 0.25))
        assert w.sum() == pytest.approx(1.0)
        assert w.argmin() == 1
        # Roughly a quarter of its former share.
        assert w[1] == pytest.approx(w[0] / 4.0, rel=0.2)

    def test_degraded_weights_requires_verdict(self):
        with pytest.raises(FaultError, match="not detected"):
            Supervisor().degraded_weights(np.full(4, 0.25))

    def test_apply_to_monitor_changes_ccr(self):
        monitor = OnlineCCRMonitor(
            profiler=ProxyProfiler(
                proxies=ProxySet(num_vertices=1200, seed=61)
            ),
            apps=("pagerank",),
        )
        cluster = Cluster(
            [get_machine("c4.xlarge"), get_machine("c4.2xlarge")]
        )
        monitor.observe(cluster)
        before = monitor.pool_for(cluster).get("pagerank")
        sup = Supervisor(threshold=1.5, patience=2, warmup=2)
        feed(sup, [[1.0, 1.0]] * 2 + [[1.0, 4.0]] * 3)
        assert sup.triggered
        applied = sup.apply_to_monitor(monitor, cluster)
        assert "c4.2xlarge" in applied
        after = monitor.pool_for(cluster).get("pagerank")
        # The degraded fast machine lost capability relative to before.
        assert (
            after.ratio("c4.2xlarge") / after.ratio("c4.xlarge")
            < before.ratio("c4.2xlarge") / before.ratio("c4.xlarge")
        )
