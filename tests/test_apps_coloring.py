"""Graph Coloring correctness: validity, colour counts, wave structure."""

import numpy as np
import pytest

from repro.apps.coloring import GraphColoring
from repro.apps.triangle_count import undirected_simple_edges
from repro.engine.distributed_graph import DistributedGraph
from repro.graph.digraph import DiGraph
from repro.partition import RandomHashPartitioner
from repro.partition.base import PartitionResult


def assert_proper(graph, colors):
    u, v = undirected_simple_edges(graph)
    assert np.all(colors[u] != colors[v]), "adjacent vertices share a colour"


class TestValidity:
    def test_powerlaw_proper(self, powerlaw_graph):
        colors, _ = GraphColoring(seed=1).color(powerlaw_graph)
        assert_proper(powerlaw_graph, colors)
        assert colors.min() >= 0

    def test_ring_two_or_three_colors(self, ring_graph):
        """An even cycle is 2-chromatic; greedy may need 3."""
        colors, _ = GraphColoring(seed=1).color(ring_graph)
        assert_proper(ring_graph, colors)
        assert colors.max() + 1 <= 3

    def test_star_two_colors(self, star_graph):
        colors, _ = GraphColoring(seed=1).color(star_graph)
        assert_proper(star_graph, colors)
        assert colors.max() + 1 == 2

    def test_complete_graph_needs_n(self):
        n = 6
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        g = DiGraph.from_edges(edges, num_vertices=n)
        colors, _ = GraphColoring(seed=1).color(g)
        assert_proper(g, colors)
        assert colors.max() + 1 == n

    def test_isolated_vertices_color_zero(self):
        g = DiGraph.from_edges([(0, 1)], num_vertices=4)
        colors, _ = GraphColoring(seed=1).color(g)
        assert colors[2] == 0 and colors[3] == 0

    def test_reciprocal_and_parallel_edges(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (0, 1)], num_vertices=2)
        colors, _ = GraphColoring(seed=1).color(g)
        assert colors[0] != colors[1]

    def test_deterministic(self, powerlaw_graph):
        a, _ = GraphColoring(seed=4).color(powerlaw_graph)
        b, _ = GraphColoring(seed=4).color(powerlaw_graph)
        assert np.array_equal(a, b)


class TestWaves:
    def test_waves_are_independent_sets(self, powerlaw_graph):
        """Within one Jones–Plassmann wave no two vertices are adjacent."""
        _, rounds_log = GraphColoring(seed=1).color(powerlaw_graph)
        u, v = undirected_simple_edges(powerlaw_graph)
        for winners in rounds_log:
            mask = np.zeros(powerlaw_graph.num_vertices, dtype=bool)
            mask[winners] = True
            assert not np.any(mask[u] & mask[v])

    def test_every_connected_vertex_colored_once(self, powerlaw_graph):
        _, rounds_log = GraphColoring(seed=1).color(powerlaw_graph)
        all_winners = np.concatenate(rounds_log)
        assert np.unique(all_winners).size == all_winners.size

    def test_max_rounds_enforced(self):
        from repro.errors import EngineError

        edges = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        g = DiGraph.from_edges(edges, num_vertices=8)
        with pytest.raises(EngineError, match="rounds"):
            GraphColoring(seed=1, max_rounds=2).color(g)

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            GraphColoring(max_rounds=0)


class TestExecution:
    def test_trace_result(self, powerlaw_graph):
        part = RandomHashPartitioner(seed=2).partition(powerlaw_graph, 4)
        trace = GraphColoring(seed=1).execute(DistributedGraph(part))
        assert trace.result["num_colors"] == trace.result["colors"].max() + 1
        assert trace.num_supersteps == trace.result["rounds"]

    def test_distribution_invariance(self, powerlaw_graph):
        solo = PartitionResult(
            powerlaw_graph,
            np.zeros(powerlaw_graph.num_edges, np.int32),
            1,
            "single",
            None,
        )
        part = RandomHashPartitioner(seed=2).partition(powerlaw_graph, 4)
        a = GraphColoring(seed=1).execute(DistributedGraph(solo)).result
        b = GraphColoring(seed=1).execute(DistributedGraph(part)).result
        assert np.array_equal(a["colors"], b["colors"])

    def test_per_round_work_shrinks(self, powerlaw_graph):
        part = RandomHashPartitioner(seed=2).partition(powerlaw_graph, 2)
        trace = GraphColoring(seed=1).execute(DistributedGraph(part))
        per_round = [sum(p.work.flops for p in s.phases) for s in trace.supersteps]
        assert per_round[-1] < per_round[0]
