"""Unit tests for repro.partition.weights."""

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.errors import PartitionError
from repro.partition.weights import (
    thread_count_weights,
    uniform_weights,
    weights_from_values,
)


def test_uniform(case1_like_cluster):
    assert np.allclose(uniform_weights(case1_like_cluster), 0.25)


def test_thread_count_same_threads_is_uniform(case1_like_cluster):
    """The paper's Case 1: prior work sees this cluster as homogeneous."""
    assert np.allclose(thread_count_weights(case1_like_cluster), 0.25)


def test_thread_count_paper_example():
    """Section III-B: 4 HW and 8 HW threads give a 1:3 ratio."""
    c = Cluster([get_machine("c4.xlarge"), get_machine("c4.2xlarge")])
    assert np.allclose(thread_count_weights(c), [0.25, 0.75])


def test_thread_count_big_ladder():
    c = Cluster([get_machine("c4.xlarge"), get_machine("c4.8xlarge")])
    w = thread_count_weights(c)
    assert w[1] / w[0] == pytest.approx(17.0)


def test_weights_from_values():
    w = weights_from_values([1.0, 3.0])
    assert np.allclose(w, [0.25, 0.75])


def test_weights_from_values_empty():
    with pytest.raises(PartitionError):
        weights_from_values([])


def test_weights_from_values_negative():
    with pytest.raises(PartitionError):
        weights_from_values([1.0, -1.0])
