"""Unit tests for the federation subsystem: journal, shard faults,
policies, routing, failover, stealing, recovery and workload format v2.
"""

import json

import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.errors import (
    FaultError,
    FederationError,
    WorkloadFormatError,
)
from repro.faults import (
    ShardCrash,
    ShardFaultSchedule,
    ShardPartition,
    ShardSlowdown,
)
from repro.federation import (
    FederationPolicy,
    FederationService,
    ShardJournal,
)
from repro.service import (
    BreakerPolicy,
    GraphSpec,
    JobRequest,
    ServicePolicy,
    Workload,
)
from repro.service.breaker import STATE_OPEN, BreakerBoard


def _cluster(*names):
    names = names or ("m4.2xlarge", "c4.2xlarge")
    return Cluster(
        [get_machine(n) for n in names],
        perf=PerformanceModel(model_scale=0.01),
    )


def _job(i, submit_s, vertices=600, **kw):
    return JobRequest(
        job_id=f"job-{i:04d}",
        app="connected_components",
        graph=GraphSpec(vertices=vertices),
        submit_s=submit_s,
        **kw,
    )


class TestFederationPolicy:
    def test_defaults_valid(self):
        policy = FederationPolicy()
        assert policy.ring_replicas == 64
        assert policy.max_global_backlog is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ring_replicas": 0},
            {"steal_backlog": 0},
            {"max_global_backlog": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(FederationError):
            FederationPolicy(**kwargs)

    def test_federation_needs_a_cluster(self):
        with pytest.raises(FederationError, match="at least one cluster"):
            FederationService([])


class TestShardJournal:
    def test_custody_replay(self):
        journal = ShardJournal(0)
        journal.append(0.0, "assigned", "a")
        journal.append(0.1, "assigned", "b")
        journal.append(0.2, "completed:completed", "a")
        journal.append(0.3, "failover_out", "b", "to shard 1")
        journal.append(0.4, "steal_in", "c", "from shard 2")
        state = journal.replay()
        assert state == {
            "a": "terminal", "b": "transferred", "c": "pending",
        }
        assert journal.pending_job_ids() == ("c",)

    def test_pending_order_is_first_custody_order(self):
        journal = ShardJournal(1)
        journal.append(0.0, "assigned", "z")
        journal.append(0.1, "assigned", "a")
        journal.append(0.2, "aborted", "z")
        assert journal.pending_job_ids() == ("z", "a")

    def test_aborted_does_not_release_custody(self):
        journal = ShardJournal(0)
        journal.append(0.0, "assigned", "a")
        journal.append(0.5, "aborted", "a", "in-flight run destroyed")
        assert journal.replay() == {"a": "pending"}

    def test_recovered_restores_custody(self):
        journal = ShardJournal(0)
        journal.append(0.0, "assigned", "a")
        journal.append(0.5, "recovered", "a")
        journal.append(0.6, "completed:completed", "a")
        assert journal.replay() == {"a": "terminal"}

    def test_time_must_be_monotone(self):
        journal = ShardJournal(0)
        journal.append(1.0, "assigned", "a")
        with pytest.raises(FederationError, match="backwards"):
            journal.append(0.5, "assigned", "b")

    def test_unknown_kind_rejected(self):
        journal = ShardJournal(0)
        with pytest.raises(FederationError, match="unknown journal kind"):
            journal.append(0.0, "vanished", "a")

    def test_sequence_numbers_dense(self):
        journal = ShardJournal(0)
        for i in range(5):
            journal.append(float(i), "assigned", f"j{i}")
        assert [e.seq for e in journal.entries] == [0, 1, 2, 3, 4]
        assert len(journal) == 5


class TestShardFaultSchedule:
    def test_generate_is_deterministic(self):
        kwargs = dict(
            num_shards=4, horizon_s=2.0, seed=9, crash_rate=0.8,
            partition_rate=0.5, slowdown_rate=0.5,
        )
        a = ShardFaultSchedule.generate(**kwargs)
        b = ShardFaultSchedule.generate(**kwargs)
        assert a == b
        assert a.num_events > 0

    def test_json_round_trip(self):
        schedule = ShardFaultSchedule.generate(
            num_shards=3, horizon_s=1.0, seed=4, crash_rate=0.9,
            partition_rate=0.9, slowdown_rate=0.9,
        )
        again = ShardFaultSchedule.from_json(schedule.to_json())
        assert again == schedule

    def test_validate_for_rejects_out_of_range_shards(self):
        schedule = ShardFaultSchedule(
            crashes=(ShardCrash(time_s=0.0, shard=5, downtime_s=1.0),)
        )
        with pytest.raises(FaultError, match="shard 5"):
            schedule.validate_for(2)
        schedule.validate_for(6)

    def test_sorted_events_total_order(self):
        schedule = ShardFaultSchedule(
            crashes=(ShardCrash(time_s=1.0, shard=1, downtime_s=1.0),),
            partitions=(
                ShardPartition(time_s=1.0, shard=0, duration_s=1.0),
            ),
            slowdowns=(
                ShardSlowdown(
                    time_s=0.5, shard=0, factor=2.0, duration_s=1.0
                ),
            ),
        )
        events = schedule.sorted_events()
        assert [type(e).__name__ for e in events] == [
            "ShardSlowdown", "ShardCrash", "ShardPartition",
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            dict(time_s=-1.0, shard=0, downtime_s=1.0),
            dict(time_s=0.0, shard=-1, downtime_s=1.0),
            dict(time_s=0.0, shard=0, downtime_s=0.0),
        ],
    )
    def test_bad_crash_rejected(self, bad):
        with pytest.raises(FaultError):
            ShardCrash(**bad)

    def test_speedup_is_not_a_fault(self):
        with pytest.raises(FaultError, match="speedups"):
            ShardSlowdown(time_s=0.0, shard=0, factor=0.5, duration_s=1.0)


class TestWorkloadFormatV2:
    def test_round_trip_with_shard_faults(self):
        workload = Workload(
            jobs=(_job(1, 0.0), _job(2, 0.5)),
            seed=3,
            shard_faults=ShardFaultSchedule(
                crashes=(ShardCrash(time_s=0.2, shard=0, downtime_s=0.4),)
            ),
        )
        text = workload.to_json()
        # Current version (v4 added mutation/fault composition);
        # shard_faults only needs >= 2 and older files still load.
        assert json.loads(text)["format_version"] == 4
        again = Workload.from_json(text)
        assert again == workload
        assert again.shard_faults is not None
        assert len(again.shard_faults.crashes) == 1

    def test_v1_files_still_load(self):
        text = json.dumps(
            {
                "format_version": 1,
                "seed": 7,
                "jobs": [
                    {
                        "job_id": "j1",
                        "app": "pagerank",
                        "graph": {"vertices": 600},
                    }
                ],
            }
        )
        workload = Workload.from_json(text)
        assert workload.seed == 7
        assert workload.shard_faults is None

    def test_shard_faults_require_v2(self):
        text = json.dumps(
            {
                "format_version": 1,
                "seed": 0,
                "jobs": [],
                "shard_faults": {"crashes": []},
            }
        )
        with pytest.raises(WorkloadFormatError, match="format_version >= 2"):
            Workload.from_json(text)

    def test_unsupported_version_named(self):
        with pytest.raises(WorkloadFormatError, match=r"\[1, 2, 3, 4\]"):
            Workload.from_json('{"format_version": 9, "jobs": []}')

    def test_malformed_shard_faults_located(self):
        text = json.dumps(
            {
                "format_version": 2,
                "seed": 0,
                "jobs": [],
                "shard_faults": {"crashes": [{"bogus": 1}]},
            }
        )
        with pytest.raises(WorkloadFormatError, match="shard_faults"):
            Workload.from_json(text)

    def test_bad_job_still_located(self):
        text = json.dumps(
            {
                "format_version": 2,
                "seed": 0,
                "jobs": [{"job_id": "a", "app": "pagerank"}],
            }
        )
        with pytest.raises(WorkloadFormatError, match=r"jobs\[0\]"):
            Workload.from_json(text)


class TestBreakerComposition:
    def test_all_open_reads_the_whole_board(self):
        board = BreakerBoard(2, BreakerPolicy(failure_threshold=1))
        assert not board.all_open()
        board.record_failures((0,), 0.0, "crash")
        assert not board.all_open()
        board.record_failures((1,), 0.1, "crash")
        assert board.all_open()
        assert all(s == STATE_OPEN for s in board.states())


class TestRoutingAndLocality:
    def test_same_graph_always_lands_on_the_same_shard(self):
        # Three distinct graphs, several submissions each, no faults: the
        # ring must pin each graph to one shard (warm caches).
        jobs = []
        for i in range(12):
            jobs.append(_job(i, 0.3 * i, vertices=600 + 100 * (i % 3)))
        workload = Workload(jobs=tuple(jobs), seed=1)
        service = FederationService([_cluster(), _cluster(), _cluster()])
        result = service.run_workload(workload)
        placements = dict(result.placements)
        by_graph = {}
        for job in jobs:
            by_graph.setdefault(job.graph.key(), set()).add(
                placements[job.job_id]
            )
        for key, shards in by_graph.items():
            assert len(shards) == 1, (key, shards)

    def test_graph_memo_is_shared_across_shards(self):
        service = FederationService([_cluster(), _cluster()])
        workload = Workload(jobs=(_job(1, 0.0), _job(2, 0.1)), seed=0)
        service.run_workload(workload)
        for shard in service.shards:
            assert shard.service._graphs is service._graphs

    def test_global_backlog_rejects_with_typed_reason(self):
        # A burst of simultaneous arrivals against a zero-capacity
        # federation bound: everything past the bound is shed globally.
        jobs = tuple(_job(i, 0.0) for i in range(6))
        workload = Workload(jobs=jobs, seed=0)
        service = FederationService(
            [_cluster()],
            federation=FederationPolicy(max_global_backlog=2),
        )
        result = service.run_workload(workload)
        reasons = [
            r.reason for r in result.records if r.status == "rejected"
        ]
        assert any("federation backlog" in reason for reason in reasons)

    def test_no_reachable_shard_rejects(self):
        # The only shard is down when the second job arrives.
        workload = Workload(
            jobs=(_job(1, 0.0), _job(2, 0.5)), seed=0
        )
        faults = ShardFaultSchedule(
            crashes=(ShardCrash(time_s=0.4, shard=0, downtime_s=10.0),)
        )
        service = FederationService([_cluster()])
        result = service.run_workload(workload, shard_faults=faults)
        rejected = [r for r in result.records if r.status == "rejected"]
        assert any(
            "no reachable shard" in r.reason for r in rejected
        )

    def test_schedule_against_missing_shard_rejected(self):
        service = FederationService([_cluster()])
        faults = ShardFaultSchedule(
            crashes=(ShardCrash(time_s=0.0, shard=3, downtime_s=1.0),)
        )
        with pytest.raises(FaultError, match="shard 3"):
            service.run_workload(
                Workload(jobs=(_job(1, 0.0),), seed=0),
                shard_faults=faults,
            )


class TestFailoverStealRecovery:
    def test_crash_fails_queued_jobs_over(self):
        # Two shards; crash the loaded one while it still holds a
        # backlog of ~1.6 ms jobs.  The queue must fail over to the
        # surviving shard and every job still ends in exactly one
        # terminal record.  (A 60000-vertex graph routes to shard 0 on a
        # 2-shard ring — every job shares the graph, so shard 0 holds
        # the whole backlog when the crash lands.)
        jobs = tuple(
            _job(i, 0.0005 * i, vertices=60000) for i in range(10)
        )
        workload = Workload(jobs=jobs, seed=0)
        faults = ShardFaultSchedule(
            crashes=(ShardCrash(time_s=0.004, shard=0, downtime_s=5.0),)
        )
        result = FederationService(
            [_cluster(), _cluster()],
            policy=ServicePolicy(max_queue_depth=16),
        ).run_workload(workload, shard_faults=faults)
        assert len(result.records) == len(jobs)
        assert {r.job_id for r in result.records} == {
            j.job_id for j in jobs
        }
        assert result.shard_crashes == 1
        assert result.failovers > 0
        # The surviving shard finished the failed-over backlog.
        ran_on = {
            dict(result.placements)[r.job_id]
            for r in result.records
            if r.status == "completed"
        }
        assert 1 in ran_on

    def test_idle_shard_steals_from_backlog(self):
        # Eight jobs on one graph flood shard 1 (vertices=600 routes
        # there on a 2-shard ring) while shard 0 gets a single job on
        # its own graph (vertices=1200).  Shard 0 drains, goes idle, and
        # must start relieving shard 1's backlog.
        flood = tuple(_job(i, 0.0, vertices=600) for i in range(8))
        lone = (_job(99, 0.0, vertices=1200),)
        workload = Workload(jobs=flood + lone, seed=0)
        result = FederationService(
            [_cluster(), _cluster()],
            policy=ServicePolicy(max_queue_depth=16),
            federation=FederationPolicy(steal_backlog=1),
        ).run_workload(workload)
        assert result.steals > 0
        placements = dict(result.placements)
        assert placements[lone[0].job_id] == 0
        assert any(placements[j.job_id] == 0 for j in flood)
        assert len(result.records) == len(flood) + 1

    def test_stranded_jobs_recover_through_the_journal(self):
        # One shard, crash mid-stream with jobs queued: no failover
        # target exists, so the journal replay must re-admit them.
        jobs = tuple(_job(i, 0.0, vertices=60000) for i in range(5))
        workload = Workload(jobs=jobs, seed=0)
        faults = ShardFaultSchedule(
            crashes=(ShardCrash(time_s=0.002, shard=0, downtime_s=0.5),)
        )
        result = FederationService(
            [_cluster()],
            policy=ServicePolicy(max_queue_depth=16),
        ).run_workload(workload, shard_faults=faults)
        assert result.recoveries > 0
        assert len(result.records) == len(jobs)
        journal = result.shards[0].journal
        kinds = [e.kind.split(":", 1)[0] for e in journal]
        assert "recovered" in kinds
        completed = [
            e.job_id for e in journal if e.kind.startswith("completed:")
        ]
        assert sorted(completed) == sorted(j.job_id for j in jobs)

    def test_slowdown_stretches_occupancy_not_records(self):
        jobs = tuple(_job(i, 0.0) for i in range(4))
        workload = Workload(jobs=jobs, seed=0)
        faults = ShardFaultSchedule(
            slowdowns=(
                ShardSlowdown(
                    time_s=0.0, shard=0, factor=10.0, duration_s=100.0
                ),
            )
        )
        slow = FederationService(
            [_cluster()], policy=ServicePolicy(max_queue_depth=16)
        ).run_workload(workload, shard_faults=faults)
        fast = FederationService(
            [_cluster()], policy=ServicePolicy(max_queue_depth=16)
        ).run_workload(workload)
        # Records are priced identically (the cluster is not slower)...
        assert [r.end_s - r.start_s for r in slow.records] == pytest.approx(
            [r.end_s - r.start_s for r in fast.records]
        )
        # ...but queue drain stretches: later starts are pushed out.
        slow_starts = sorted(r.start_s for r in slow.records)
        fast_starts = sorted(r.start_s for r in fast.records)
        assert slow_starts[-1] > fast_starts[-1]

    def test_partitioned_shard_keeps_draining_but_gets_nothing_new(self):
        jobs = tuple(_job(i, 0.05 * i) for i in range(6))
        workload = Workload(jobs=jobs, seed=0)
        faults = ShardFaultSchedule(
            partitions=(
                ShardPartition(time_s=0.0, shard=0, duration_s=50.0),
            )
        )
        result = FederationService(
            [_cluster(), _cluster()],
            policy=ServicePolicy(max_queue_depth=16),
        ).run_workload(workload, shard_faults=faults)
        placements = dict(result.placements)
        ran_on = {
            placements[r.job_id]
            for r in result.records
            if r.start_s is not None
        }
        assert ran_on == {1}
        assert len(result.records) == len(jobs)
