"""Unit tests for the `repro workload` and `repro serve` commands."""

import json

import pytest

from repro.cli import main
from repro.service import Workload

CLUSTER = "m4.2xlarge,c4.2xlarge"


def write_workload(tmp_path, num_jobs=6, extra=()):
    path = str(tmp_path / "wl.json")
    argv = [
        "workload", "--jobs", str(num_jobs), "--seed", "7",
        "--mean-interarrival", "0.05", "--output", path,
    ]
    argv.extend(extra)
    assert main(argv) == 0
    return path


class TestWorkloadCommand:
    def test_generates_loadable_file(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        out = capsys.readouterr().out
        assert "6 job(s)" in out
        workload = Workload.load(path)
        assert workload.num_jobs == 6
        assert workload.seed == 7

    def test_same_seed_same_file(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        for path in (a, b):
            assert main(["workload", "--jobs", "5", "--seed", "7",
                         "--output", path]) == 0
        with open(a, encoding="utf-8") as fa, open(b, encoding="utf-8") as fb:
            assert fa.read() == fb.read()

    def test_rejects_zero_jobs(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["workload", "--jobs", "0",
                  "--output", str(tmp_path / "x.json")])
        assert exc.value.code == 2

    def test_rejects_bad_fraction(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["workload", "--jobs", "5", "--deadline-fraction", "1.5",
                  "--output", str(tmp_path / "x.json")])
        assert exc.value.code == 2


class TestServeCommand:
    def test_replay_prints_summary(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        code = main(["serve", "--cluster", CLUSTER, "--workload", path])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs_submitted" in out
        assert "rejection_rate" in out

    def test_json_output_parses(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        capsys.readouterr()
        assert main(["serve", "--cluster", CLUSTER, "--workload", path,
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs_submitted"] == 6
        assert "rejection_rate" in summary

    def test_trace_out_is_reproducible(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        t1 = str(tmp_path / "t1.json")
        t2 = str(tmp_path / "t2.json")
        assert main(["serve", "--cluster", CLUSTER, "--workload", path,
                     "--trace-out", t1]) == 0
        assert main(["serve", "--cluster", CLUSTER, "--workload", path,
                     "--trace-out", t2]) == 0
        capsys.readouterr()
        with open(t1, encoding="utf-8") as f1, open(t2, encoding="utf-8") as f2:
            assert f1.read() == f2.read()

    def test_blanket_deadline_applies_to_undated_jobs(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        capsys.readouterr()
        assert main(["serve", "--cluster", CLUSTER, "--workload", path,
                     "--deadline", "1e-9", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs_deadline_exceeded"] == 6

    def test_obs_dir_records_service_counters(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        obs_dir = tmp_path / "obs"
        assert main(["serve", "--cluster", CLUSTER, "--workload", path,
                     "--obs-dir", str(obs_dir)]) == 0
        capsys.readouterr()
        with open(obs_dir / "metrics.json", encoding="utf-8") as fh:
            counters = json.load(fh)["counters"]
        assert counters["service.admitted"] > 0
        assert "service.completed" in counters


class TestServeHardening:
    def test_missing_workload_file_exits_2(self, tmp_path, capsys):
        code = main(["serve", "--cluster", CLUSTER,
                     "--workload", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_record_points_at_index(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["jobs"][3]["deadline_s"] = -1.0
        bad = str(tmp_path / "bad.json")
        with open(bad, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        code = main(["serve", "--cluster", CLUSTER, "--workload", bad])
        assert code == 2
        err = capsys.readouterr().err
        assert "jobs[3]" in err
        assert "deadline_s" in err

    def test_zero_deadline_rejected_by_parser(self, tmp_path):
        path = write_workload(tmp_path)
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--cluster", CLUSTER, "--workload", path,
                  "--deadline", "0"])
        assert exc.value.code == 2

    def test_negative_deadline_rejected_by_parser(self, tmp_path):
        path = write_workload(tmp_path)
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--cluster", CLUSTER, "--workload", path,
                  "--deadline", "-5"])
        assert exc.value.code == 2

    def test_bad_policy_combination_exits_2(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        code = main(["serve", "--cluster", CLUSTER, "--workload", path,
                     "--breaker-cooldown", "1", "--max-queue-depth", "4",
                     "--shed-priority-max", "-1", "--shed-cap", "1",
                     "--shed-depth", "1", "--max-attempts", "1",
                     "--breaker-threshold", "1", "--scale", "0.01"])
        # All individually valid: replay succeeds.
        assert code == 0
        capsys.readouterr()

    def test_unknown_cluster_machine_exits_2(self, tmp_path, capsys):
        path = write_workload(tmp_path)
        code = main(["serve", "--cluster", "warp9.xlarge",
                     "--workload", path])
        assert code == 2
        assert "unknown machine type" in capsys.readouterr().err
