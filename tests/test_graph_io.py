"""Unit tests for repro.graph.io (edge-list serialisation)."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.io import read_edge_list, write_edge_list


def test_roundtrip(tmp_path, tiny_graph):
    path = tmp_path / "g.txt"
    write_edge_list(tiny_graph, path)
    back = read_edge_list(path, num_vertices=tiny_graph.num_vertices)
    assert back == tiny_graph


def test_header_comments_skipped(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n# Nodes: 2 Edges: 1\n0\t1\n")
    g = read_edge_list(path)
    assert g.num_edges == 1


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n\n1 2\n")
    assert read_edge_list(path).num_edges == 2


def test_whitespace_flexible(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0   1\n1\t2\n")
    assert read_edge_list(path).num_edges == 2


def test_malformed_line_reports_lineno(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n0 1 2\n")
    with pytest.raises(GraphFormatError, match=":2:"):
        read_edge_list(path)


def test_non_integer_endpoint(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("a b\n")
    with pytest.raises(GraphFormatError, match="non-integer"):
        read_edge_list(path)


def test_cleanup_options(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 0\n0 1\n0 1\n")
    g = read_edge_list(path, drop_self_loops=True, deduplicate=True)
    assert g.num_edges == 1


def test_write_without_header(tmp_path, ring_graph):
    path = tmp_path / "g.txt"
    write_edge_list(ring_graph, path, header=False)
    content = path.read_text()
    assert not content.startswith("#")
    assert len(content.strip().splitlines()) == ring_graph.num_edges


def test_write_header_counts(tmp_path, ring_graph):
    path = tmp_path / "g.txt"
    write_edge_list(ring_graph, path)
    header = path.read_text().splitlines()[1]
    assert "Nodes: 8" in header and "Edges: 8" in header
