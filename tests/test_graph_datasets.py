"""Unit tests for repro.graph.datasets (Table II stand-ins)."""

import pytest

from repro.errors import GraphError
from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    resolve_alpha,
)


class TestRegistry:
    def test_table2_datasets_present(self):
        for name in (
            "amazon",
            "citation",
            "social_network",
            "wiki",
            "synthetic_one",
            "synthetic_two",
            "synthetic_three",
        ):
            assert name in DATASETS

    def test_paper_counts(self):
        assert DATASETS["amazon"].paper_vertices == 403_394
        assert DATASETS["amazon"].paper_edges == 3_387_388
        assert DATASETS["social_network"].paper_edges == 68_993_773

    def test_kind_filter(self):
        assert set(dataset_names("synthetic")) == {
            "synthetic_one",
            "synthetic_two",
            "synthetic_three",
        }
        assert len(dataset_names("real")) == 4

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            dataset_names("imaginary")

    def test_synthetic_alphas_published(self):
        assert DATASETS["synthetic_one"].alpha == 1.95
        assert DATASETS["synthetic_two"].alpha == 2.1
        assert DATASETS["synthetic_three"].alpha == 2.25


class TestLoadDataset:
    def test_scaled_vertex_count(self):
        g = load_dataset("amazon", scale=0.005)
        assert g.num_vertices == round(403_394 * 0.005)

    def test_density_tracks_paper(self):
        g = load_dataset("citation", scale=0.01)
        paper = DATASETS["citation"].average_degree
        assert g.num_edges / g.num_vertices == pytest.approx(paper, rel=0.35)

    def test_deterministic(self):
        assert load_dataset("wiki", scale=0.002) == load_dataset("wiki", scale=0.002)

    def test_seed_override_changes_graph(self):
        a = load_dataset("wiki", scale=0.002)
        b = load_dataset("wiki", scale=0.002, seed=999)
        assert a != b

    def test_no_self_loops(self):
        g = load_dataset("amazon", scale=0.002)
        src, dst = g.edges()
        assert not (src == dst).any()

    def test_unknown_name(self):
        with pytest.raises(GraphError, match="unknown dataset"):
            load_dataset("friendster")

    @pytest.mark.parametrize("scale", [0.0, -0.5, 1.5])
    def test_bad_scale(self, scale):
        with pytest.raises(ValueError):
            load_dataset("amazon", scale=scale)


class TestResolveAlpha:
    def test_synthetic_uses_published(self):
        assert resolve_alpha(DATASETS["synthetic_two"]) == 2.1

    def test_real_solved_in_natural_band(self):
        alpha = resolve_alpha(DATASETS["wiki"], max_degree=20_000)
        assert 1.8 < alpha < 2.8

    def test_denser_graph_smaller_alpha(self):
        dense = resolve_alpha(DATASETS["social_network"], max_degree=20_000)
        sparse = resolve_alpha(DATASETS["wiki"], max_degree=20_000)
        assert dense < sparse
