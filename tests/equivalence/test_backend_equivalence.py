"""Differential equivalence: scalar vs vectorized kernel backends.

The PR-4 contract (DESIGN.md §11): every artefact the library emits —
partition assignments, ExecutionTrace canonical JSON, CCR estimates,
experiment rows — must be **bit-identical** under both backends.  These
tests run the full pipeline twice, once per backend, and compare bytes,
over every app × partitioner combination and a set of degenerate graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.registry import DEFAULT_APPS, make_app
from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineSpec
from repro.core.profiler import ProxyProfiler
from repro.core.proxy import ProxySet
from repro.engine.distributed_graph import DistributedGraph
from repro.graph.digraph import DiGraph
from repro.kernels.backend import use_backend
from repro.kernels.cache import assignment_cache, clear_all_caches
from repro.partition import make_partitioner
from repro.powerlaw.generator import generate_power_law_graph

PARTITIONERS = ("random_hash", "grid", "oblivious", "hybrid", "ginger")
#: Deliberately non-uniform: exercises the weighted paths of every
#: partitioner and the heterogeneity-aware balance terms.
WEIGHTS = (1.0, 2.0, 1.5, 0.5)
NUM_MACHINES = 4


@pytest.fixture(scope="module")
def pl_graph() -> DiGraph:
    return generate_power_law_graph(num_vertices=300, alpha=2.0, seed=11)


def _edge_case_graphs():
    empty = np.empty(0, dtype=np.int64)
    return {
        "no_edges": DiGraph(5, empty, empty),
        "single_vertex": DiGraph(1, empty, empty),
        # Two triangles plus isolated vertices 6-8.
        "disconnected": DiGraph.from_edges(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], num_vertices=9
        ),
        # Parallel edges, reciprocal pair and self loops.
        "duplicates": DiGraph.from_edges(
            [(0, 0), (0, 1), (0, 1), (1, 0), (2, 2), (1, 2), (1, 2), (3, 1)],
            num_vertices=4,
        ),
    }


def _run_pipeline(app_name, partitioner_name, graph, backend):
    """Partition + execute under one backend, from cold caches."""
    clear_all_caches()
    with use_backend(backend):
        part = make_partitioner(partitioner_name, seed=3)
        res = part.partition(graph, NUM_MACHINES, np.array(WEIGHTS))
        dgraph = DistributedGraph(res)
        trace = make_app(app_name).execute(dgraph)
    return res.assignment.copy(), trace.canonical_json()


@pytest.mark.parametrize("partitioner_name", PARTITIONERS)
@pytest.mark.parametrize("app_name", DEFAULT_APPS)
def test_trace_bit_identical(app_name, partitioner_name, pl_graph):
    """Every app × partitioner: same assignment bytes, same trace JSON."""
    a_scalar, t_scalar = _run_pipeline(
        app_name, partitioner_name, pl_graph, "scalar"
    )
    a_vec, t_vec = _run_pipeline(
        app_name, partitioner_name, pl_graph, "vectorized"
    )
    assert np.array_equal(a_scalar, a_vec)
    assert t_scalar == t_vec


@pytest.mark.parametrize("partitioner_name", ("random_hash", "ginger"))
@pytest.mark.parametrize("app_name", DEFAULT_APPS)
@pytest.mark.parametrize("graph_name", sorted(_edge_case_graphs()))
def test_edge_case_graphs_bit_identical(app_name, partitioner_name, graph_name):
    """Degenerate graphs (no edges, singleton, disconnected, duplicates)."""
    graph = _edge_case_graphs()[graph_name]
    a_scalar, t_scalar = _run_pipeline(
        app_name, partitioner_name, graph, "scalar"
    )
    a_vec, t_vec = _run_pipeline(
        app_name, partitioner_name, graph, "vectorized"
    )
    assert np.array_equal(a_scalar, a_vec)
    assert t_scalar == t_vec


def test_profiler_ccr_identical():
    """Proxy-profiled CCR pools match to the last bit across backends."""
    slow = MachineSpec("slow", hw_threads=4, freq_ghz=2.0, mem_bw_gbs=8.0,
                       llc_mb=4.0)
    fast = MachineSpec("fast", hw_threads=8, freq_ghz=3.2, mem_bw_gbs=20.0,
                       llc_mb=12.0)
    pools = {}
    for backend in ("scalar", "vectorized"):
        clear_all_caches()
        with use_backend(backend):
            profiler = ProxyProfiler(
                proxies=ProxySet(num_vertices=400, seed=5),
                apps=("pagerank", "connected_components"),
            )
            report = profiler.profile(Cluster([slow, fast]))
            pools[backend] = {
                app: report.pool.get(app).as_dict()
                for app in report.pool.apps()
            }
    assert pools["scalar"] == pools["vectorized"]


def test_fig8a_rows_identical():
    """A whole experiment driver produces identical rows on both backends."""
    from repro.experiments.fig8 import run_fig8a

    rows = {}
    for backend in ("scalar", "vectorized"):
        clear_all_caches()
        with use_backend(backend):
            result = run_fig8a(scale=0.002, apps=("pagerank",), seed=100)
            rows[backend] = result.rows()
    assert rows["scalar"] == rows["vectorized"]


def test_vectorized_cache_hits_preserve_results(pl_graph):
    """A warm-cache rerun returns the bytes the cold run produced."""
    with use_backend("vectorized"):
        clear_all_caches()
        outputs = []
        for _ in range(2):
            part = make_partitioner("hybrid", seed=3)
            res = part.partition(pl_graph, NUM_MACHINES, np.array(WEIGHTS))
            trace = make_app("coloring").execute(DistributedGraph(res))
            outputs.append((res.assignment.copy(), trace.canonical_json()))
        assert assignment_cache.hits >= 1  # the rerun actually hit
    assert np.array_equal(outputs[0][0], outputs[1][0])
    assert outputs[0][1] == outputs[1][1]
