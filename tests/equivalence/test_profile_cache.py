"""Profile-cache semantics and the fig2/fig8 duplicate-profiling fix.

Before PR 4 the fig2, fig8a and fig8b drivers each re-executed the same
(app, graph) profiling sets from scratch — identical graph *content*
loaded independently per driver.  The content-keyed profile caches
deduplicate them; these tests pin the exact execution counts.
"""

from __future__ import annotations

import pytest

from repro.engine.runtime import GraphProcessingSystem
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig8 import run_fig8a, run_fig8b
from repro.kernels.backend import use_backend
from repro.kernels.cache import cache_stats, clear_all_caches

#: One profiling execution per unique graph: 4 real datasets + 3 proxies.
UNIQUE_GRAPHS = 7
SCALE = 0.002


@pytest.fixture
def count_profile_runs(monkeypatch):
    calls = {"n": 0}
    original = GraphProcessingSystem.run_single_machine

    def counting(self, app, graph):
        calls["n"] += 1
        return original(self, app, graph)

    monkeypatch.setattr(GraphProcessingSystem, "run_single_machine", counting)
    return calls


def test_fig_drivers_deduplicate_profiling(count_profile_runs):
    """fig8a profiles each unique graph once; fig8b and fig2 add nothing."""
    clear_all_caches()
    with use_backend("vectorized"):
        run_fig8a(scale=SCALE, apps=("pagerank",), seed=100)
        assert count_profile_runs["n"] == UNIQUE_GRAPHS

        # Same graph content, freshly loaded, different machine ladder:
        # every trace comes from the content-keyed cache.
        run_fig8b(scale=SCALE, apps=("pagerank",), seed=100)
        assert count_profile_runs["n"] == UNIQUE_GRAPHS

        # fig2 re-runs the whole fig8a ladder: fully deduplicated too.
        run_fig2(scale=SCALE, apps=("pagerank",), seed=100)
        assert count_profile_runs["n"] == UNIQUE_GRAPHS

    stats = cache_stats()
    assert stats["profile_trace"]["hits"] > 0
    assert stats["machine_time"]["hits"] > 0


def test_scalar_backend_reprofiles_every_time(count_profile_runs):
    """The reference backend keeps its original (duplicated) behaviour."""
    clear_all_caches()
    with use_backend("scalar"):
        run_fig8a(scale=SCALE, apps=("pagerank",), seed=100)
        assert count_profile_runs["n"] == UNIQUE_GRAPHS
        run_fig8b(scale=SCALE, apps=("pagerank",), seed=100)
        assert count_profile_runs["n"] == 2 * UNIQUE_GRAPHS
