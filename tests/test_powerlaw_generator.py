"""Unit tests for repro.powerlaw.generator (Algorithm 1)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.powerlaw.distribution import PowerLawDistribution
from repro.powerlaw.generator import (
    SyntheticGraphSpec,
    generate_from_spec,
    generate_power_law_graph,
)


class TestGeneration:
    def test_deterministic(self):
        a = generate_power_law_graph(500, 2.1, seed=3)
        b = generate_power_law_graph(500, 2.1, seed=3)
        assert a == b

    def test_seed_changes_graph(self):
        a = generate_power_law_graph(500, 2.1, seed=3)
        b = generate_power_law_graph(500, 2.1, seed=4)
        assert a != b

    def test_no_self_loops_by_default(self, powerlaw_graph):
        src, dst = powerlaw_graph.edges()
        assert not np.any(src == dst)

    def test_self_loops_allowed_when_requested(self):
        g = generate_power_law_graph(200, 1.6, allow_self_loops=True, seed=0)
        src, dst = g.edges()
        # With hash targets, some self loops occur at this density.
        assert np.any(src == dst)

    def test_every_vertex_has_out_edge(self, powerlaw_graph):
        """Algorithm 1 draws degree >= 1 for every vertex."""
        assert powerlaw_graph.out_degrees.min() >= 1

    def test_degree_sequence_matches_distribution_draw(self):
        """Out-degrees equal the cdf draw exactly (rejection redirects)."""
        n, alpha, seed = 800, 2.0, 11
        g = generate_power_law_graph(n, alpha, seed=seed)
        rng = np.random.default_rng(seed)
        degree_seed = int(rng.integers(0, 2**62))
        expected = PowerLawDistribution(alpha, n - 1).sample_degrees(
            n, seed=degree_seed
        )
        assert np.array_equal(g.out_degrees, expected)

    def test_average_degree_tracks_alpha(self):
        dense = generate_power_law_graph(3000, 1.9, seed=1)
        sparse = generate_power_law_graph(3000, 2.4, seed=1)
        assert dense.num_edges > sparse.num_edges

    def test_mean_close_to_theoretical(self):
        n, alpha = 5000, 2.1
        g = generate_power_law_graph(n, alpha, seed=5)
        theory = PowerLawDistribution(alpha, n - 1).mean
        assert g.num_edges / n == pytest.approx(theory, rel=0.25)

    def test_max_degree_cap_respected(self):
        g = generate_power_law_graph(2000, 1.8, max_degree=10, seed=2)
        assert g.out_degrees.max() <= 10

    def test_targets_spread(self):
        """Neighbour hashing spreads edges over many targets."""
        g = generate_power_law_graph(1000, 2.0, seed=9)
        assert np.count_nonzero(g.in_degrees) > 400


class TestEdgeCases:
    def test_single_vertex_no_loops_rejected(self):
        with pytest.raises(GraphError):
            generate_power_law_graph(1, 2.0)

    def test_single_vertex_with_loops(self):
        g = generate_power_law_graph(1, 2.0, allow_self_loops=True, seed=0)
        assert g.num_vertices == 1 and g.num_edges >= 1

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            generate_power_law_graph(0, 2.0)

    def test_two_vertices(self):
        g = generate_power_law_graph(2, 2.0, seed=0)
        src, dst = g.edges()
        assert np.all(src != dst)


class TestSpec:
    def test_resolved_max_degree_default(self):
        spec = SyntheticGraphSpec("p", 100, 2.0)
        assert spec.resolved_max_degree() == 99

    def test_resolved_max_degree_explicit(self):
        spec = SyntheticGraphSpec("p", 100, 2.0, max_degree=10)
        assert spec.resolved_max_degree() == 10

    def test_generate_from_spec_matches_direct(self):
        spec = SyntheticGraphSpec("p", 300, 2.2, seed=8)
        assert generate_from_spec(spec) == generate_power_law_graph(
            300, 2.2, seed=8
        )

    def test_distribution_factory(self):
        spec = SyntheticGraphSpec("p", 100, 2.0)
        assert spec.distribution().alpha == 2.0
