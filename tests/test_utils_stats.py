"""Unit tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.utils.stats import (
    generalized_harmonic,
    geometric_mean,
    mean_absolute_pct_error,
    pct_error,
    summarize,
)


class TestGeneralizedHarmonic:
    def test_s_zero_counts(self):
        assert generalized_harmonic(10, 0.0) == pytest.approx(10.0)

    def test_s_one_matches_harmonic_series(self):
        assert generalized_harmonic(4, 1.0) == pytest.approx(1 + 1 / 2 + 1 / 3 + 1 / 4)

    def test_n_one(self):
        assert generalized_harmonic(1, 2.5) == pytest.approx(1.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generalized_harmonic(0, 2.0)

    def test_decreasing_in_exponent(self):
        assert generalized_harmonic(100, 2.5) < generalized_harmonic(100, 1.5)


class TestGeometricMean:
    def test_constant(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPctError:
    def test_paper_example(self):
        """A 3x estimate against a 1.5x truth is a 100 % error."""
        assert pct_error(3.0, 1.5) == pytest.approx(100.0)

    def test_symmetric_in_magnitude(self):
        assert pct_error(0.5, 1.0) == pytest.approx(50.0)

    def test_exact(self):
        assert pct_error(2.0, 2.0) == 0.0

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            pct_error(1.0, 0.0)


class TestMeanAbsolutePctError:
    def test_matches_manual(self):
        got = mean_absolute_pct_error([2.0, 3.0], [1.0, 2.0])
        assert got == pytest.approx((100.0 + 50.0) / 2)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            mean_absolute_pct_error([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            mean_absolute_pct_error([], [])


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0 and s.max == 3.0
        assert s.std == pytest.approx(np.std([1, 2, 3]))

    def test_as_dict(self):
        d = summarize([5.0]).as_dict()
        assert d["count"] == 1 and d["mean"] == 5.0

    def test_empty(self):
        with pytest.raises(ValueError):
            summarize([])
