"""Behavioural tests shared by all five partitioning algorithms.

Every algorithm must (a) assign every edge to a valid machine,
(b) be deterministic under a fixed seed, (c) follow uniform weights to a
rough balance, and (d) shift load according to a skewed weight vector.
Algorithm-specific behaviour is tested in its own module.
"""

import numpy as np
import pytest

from repro.partition import PARTITIONERS, make_partitioner
from repro.partition.metrics import weighted_imbalance

ALGORITHMS = sorted(PARTITIONERS)


@pytest.mark.parametrize("name", ALGORITHMS)
class TestCommonContract:
    def test_every_edge_assigned_in_range(self, name, powerlaw_graph):
        r = make_partitioner(name, seed=1).partition(powerlaw_graph, 4)
        assert r.assignment.size == powerlaw_graph.num_edges
        assert r.assignment.min() >= 0 and r.assignment.max() < 4

    def test_deterministic(self, name, powerlaw_graph):
        a = make_partitioner(name, seed=5).partition(powerlaw_graph, 4)
        b = make_partitioner(name, seed=5).partition(powerlaw_graph, 4)
        assert np.array_equal(a.assignment, b.assignment)

    def test_uniform_weights_rough_balance(self, name, powerlaw_graph_large):
        r = make_partitioner(name, seed=2).partition(powerlaw_graph_large, 4)
        assert weighted_imbalance(r) < 1.25

    def test_skewed_weights_shift_load(self, name, powerlaw_graph_large):
        part = make_partitioner(name, seed=2)
        skew = part.partition(powerlaw_graph_large, 4, weights=[1, 1, 1, 5])
        counts = skew.edges_per_machine()
        # The heavy machine holds clearly more than a uniform share ...
        assert counts[3] > 1.8 * counts[:3].mean()
        # ... and the overall weighted balance is still respected.  Grid's
        # constraint sets structurally cap extreme skew (the paper makes
        # the same caveat about its heuristics), so it gets a wider band.
        bound = 1.45 if name == "grid" else 1.3
        assert weighted_imbalance(skew) < bound

    def test_empty_graph(self, name):
        from repro.graph.digraph import DiGraph

        g = DiGraph(4, np.empty(0, np.int64), np.empty(0, np.int64))
        r = make_partitioner(name, seed=0).partition(g, 4)
        assert r.assignment.size == 0

    def test_single_machine(self, name, powerlaw_graph):
        # A single machine is a 1x1 grid, so even Grid accepts it.
        r = make_partitioner(name, seed=0).partition(powerlaw_graph, 1)
        assert np.all(r.assignment == 0)


def test_make_partitioner_unknown():
    with pytest.raises(ValueError, match="unknown partitioner"):
        make_partitioner("metis")


def test_registry_has_papers_five():
    assert set(PARTITIONERS) == {
        "random_hash",
        "oblivious",
        "grid",
        "hybrid",
        "ginger",
    }
