"""Backward-compat regression: a 1-shard federation IS the job service.

The federation's scale-out must not change PR 5 semantics at width 1: a
1-shard, no-shard-fault federation replay must be *byte-identical* to a
direct ``JobService.run_workload`` on the same workload — records,
breaker history, totals and trace bytes.  The trace hash is additionally
pinned as a golden fixture so silent drift in either code path fails
loudly.

Regenerate the fixture (only after an intentional semantic change)::

    PYTHONPATH=src python scripts/regen_federation_golden.py
"""

import hashlib
import pathlib

import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.faults import ShardFaultSchedule
from repro.faults.checkpoint import CheckpointPolicy, RetryPolicy
from repro.federation import FederationPolicy, FederationService
from repro.service import (
    BreakerPolicy,
    JobService,
    ServicePolicy,
    generate_workload,
)

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / "federation_compat.sha256"
)

NUM_JOBS = 40


def _workload():
    return generate_workload(
        NUM_JOBS,
        seed=13,
        mean_interarrival_s=0.05,
        deadline_fraction=0.25,
        fault_fraction=0.2,
        crash_rate=0.02,
        hot_machine=1,
        hot_fraction=0.1,
        hot_repeats=1,
    )


def _cluster():
    return Cluster(
        [get_machine("m4.2xlarge"), get_machine("c4.2xlarge")],
        perf=PerformanceModel(model_scale=0.01),
    )


def _service_knobs():
    return dict(
        policy=ServicePolicy(max_queue_depth=4, max_attempts=2),
        breaker_policy=BreakerPolicy(failure_threshold=3, cooldown_s=1.0),
        checkpoint=CheckpointPolicy(interval=5, restart_seconds=0.05),
        engine_retry=RetryPolicy(max_retries=2, backoff_base_s=0.01),
    )


@pytest.fixture(scope="module")
def replays():
    workload = _workload()
    cluster = _cluster()
    direct = JobService(cluster, **_service_knobs()).run_workload(workload)
    federated = FederationService(
        [cluster], **_service_knobs()
    ).run_workload(workload)
    return direct, federated


class TestOneShardIsTheJobService:
    def test_traces_byte_identical(self, replays):
        direct, federated = replays
        assert federated.service_view().trace_json() == direct.trace_json()

    def test_records_identical(self, replays):
        direct, federated = replays
        assert federated.records == direct.records

    def test_breaker_history_identical(self, replays):
        direct, federated = replays
        view = federated.service_view()
        assert view.breaker_events == direct.breaker_events
        assert view.breaker_states == direct.breaker_states
        assert view.breaker_trips == direct.breaker_trips

    def test_makespan_and_depth_identical(self, replays):
        direct, federated = replays
        view = federated.service_view()
        assert view.makespan_s == direct.makespan_s
        assert view.max_queue_depth == direct.max_queue_depth

    def test_service_summary_keys_agree(self, replays):
        direct, federated = replays
        fed_summary = federated.summary()
        for key, value in direct.summary().items():
            assert fed_summary[key] == value, key

    def test_explicit_empty_shard_faults_change_nothing(self, replays):
        direct, _ = replays
        federated = FederationService(
            [_cluster()],
            federation=FederationPolicy(),
            **_service_knobs(),
        ).run_workload(_workload(), shard_faults=ShardFaultSchedule())
        assert federated.service_view().trace_json() == direct.trace_json()

    def test_one_shard_run_is_failover_free(self, replays):
        _, federated = replays
        assert federated.shard_crashes == 0
        assert federated.failovers == 0
        assert federated.steals == 0
        assert federated.recoveries == 0
        assert federated.lost_seconds == 0.0


class TestGoldenTraceHash:
    def test_trace_hash_matches_golden(self, replays):
        direct, federated = replays
        if not GOLDEN_PATH.exists():
            pytest.fail(
                f"missing golden fixture {GOLDEN_PATH.name}; generate it "
                "with scripts/regen_federation_golden.py"
            )
        expected = GOLDEN_PATH.read_text(encoding="utf-8").strip()
        actual = hashlib.sha256(
            direct.trace_json().encode("utf-8")
        ).hexdigest()
        assert actual == expected, (
            "service trace drifted from the pinned golden hash; if the "
            "change is intentional, regenerate with "
            "scripts/regen_federation_golden.py"
        )
        assert (
            hashlib.sha256(
                federated.service_view().trace_json().encode("utf-8")
            ).hexdigest()
            == expected
        )
