"""CLI tests for federated serving: ``serve --shards``, ``faults
--shards`` and workload-embedded shard fault schedules.
"""

import json

import pytest

from repro.cli import main
from repro.faults import ShardFaultSchedule
from repro.service import Workload


def _make_workload(tmp_path, *extra):
    path = tmp_path / "workload.json"
    code = main(
        [
            "workload", "--jobs", "12", "--seed", "3",
            "--mean-interarrival", "0.02",
            "--deadline-fraction", "0.2",
            "--output", str(path),
            *extra,
        ]
    )
    assert code == 0
    return path


class TestShardFaultsCommand:
    def test_generate_prints_and_saves(self, tmp_path, capsys):
        out = tmp_path / "shard-faults.json"
        code = main(
            [
                "faults", "--shards", "3", "--seed", "5",
                "--crash-rate", "0.9", "--partition-rate", "0.5",
                "--slowdown-rate", "0.5", "--horizon-s", "2.0",
                "--output", str(out),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "shard fault schedule" in captured
        assert f"schedule saved to {out}" in captured
        schedule = ShardFaultSchedule.load(out)
        assert schedule.num_events > 0
        schedule.validate_for(3)

    def test_neither_machines_nor_shards_is_an_error(self, capsys):
        code = main(["faults"])
        assert code == 2
        assert "--machines" in capsys.readouterr().err

    def test_machine_mode_still_works(self, tmp_path, capsys):
        out = tmp_path / "faults.json"
        code = main(
            ["faults", "--machines", "4", "--crash-rate", "0.2",
             "--output", str(out)]
        )
        assert code == 0
        assert "fault schedule" in capsys.readouterr().out


class TestWorkloadEmbedding:
    def test_shards_flag_embeds_a_v2_schedule(self, tmp_path, capsys):
        path = _make_workload(
            tmp_path,
            "--shards", "3", "--shard-crash-rate", "0.9",
            "--shard-partition-rate", "0.5",
        )
        captured = capsys.readouterr().out
        assert "shard fault(s) embedded" in captured
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format_version"] == 4
        assert "shard_faults" in payload
        workload = Workload.load(path)
        assert workload.shard_faults is not None
        assert workload.shard_faults.num_events > 0

    def test_no_shards_flag_stays_v2_without_schedule(self, tmp_path):
        path = _make_workload(tmp_path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert "shard_faults" not in payload
        assert Workload.load(path).shard_faults is None


class TestFederatedServe:
    def test_smoke_with_trace_out(self, tmp_path, capsys):
        workload = _make_workload(tmp_path)
        trace = tmp_path / "trace.json"
        code = main(
            [
                "serve", "--cluster", "m4.2xlarge,c4.2xlarge",
                "--workload", str(workload),
                "--shards", "3", "--trace-out", str(trace),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "federated replay: 12 job(s) on 3 shard(s)" in captured
        assert "per-shard report" in captured
        payload = json.loads(trace.read_text(encoding="utf-8"))
        assert payload["summary"]["shards"] == 3
        assert len(payload["records"]) == 12

    def test_json_summary(self, tmp_path, capsys):
        workload = _make_workload(tmp_path)
        capsys.readouterr()
        code = main(
            [
                "serve", "--cluster", "m4.2xlarge,c4.2xlarge",
                "--workload", str(workload),
                "--shards", "2", "--json",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shards"] == 2
        assert summary["jobs_submitted"] == 12
        assert "steals" in summary and "failovers" in summary

    def test_per_shard_cluster_specs(self, tmp_path, capsys):
        workload = _make_workload(tmp_path)
        code = main(
            [
                "serve",
                "--cluster", "m4.2xlarge;c4.2xlarge,m4.2xlarge",
                "--workload", str(workload),
                "--shards", "2",
            ]
        )
        assert code == 0
        assert "c4.2xlarge,m4.2xlarge" in capsys.readouterr().out

    def test_explicit_shard_fault_file(self, tmp_path, capsys):
        workload = _make_workload(tmp_path)
        faults = tmp_path / "shard-faults.json"
        assert (
            main(
                ["faults", "--shards", "2", "--seed", "5",
                 "--crash-rate", "0.9", "--horizon-s", "0.3",
                 "--output", str(faults)]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "serve", "--cluster", "m4.2xlarge,c4.2xlarge",
                "--workload", str(workload),
                "--shards", "2", "--shard-faults", str(faults),
                "--json",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shard_crashes"] >= 1

    def test_embedded_schedule_is_replayed(self, tmp_path, capsys):
        workload = _make_workload(
            tmp_path,
            "--shards", "2", "--shard-crash-rate", "0.95",
            "--shard-horizon", "0.3",
        )
        capsys.readouterr()
        code = main(
            [
                "serve", "--cluster", "m4.2xlarge,c4.2xlarge",
                "--workload", str(workload),
                "--shards", "2", "--json",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shard_crashes"] >= 1


class TestFederatedServeErrors:
    def test_shard_faults_without_shards(self, tmp_path, capsys):
        workload = _make_workload(tmp_path)
        code = main(
            [
                "serve", "--cluster", "m4.2xlarge",
                "--workload", str(workload),
                "--shard-faults", "whatever.json",
            ]
        )
        assert code == 2
        assert "--shard-faults requires --shards" in capsys.readouterr().err

    def test_cluster_spec_count_mismatch(self, tmp_path, capsys):
        workload = _make_workload(tmp_path)
        code = main(
            [
                "serve", "--cluster", "m4.2xlarge;c4.2xlarge",
                "--workload", str(workload), "--shards", "3",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "2 shard cluster(s)" in err
        assert "--shards is 3" in err

    def test_bad_format_version_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"format_version": 9, "jobs": []}', encoding="utf-8"
        )
        code = main(
            [
                "serve", "--cluster", "m4.2xlarge",
                "--workload", str(bad), "--shards", "2",
            ]
        )
        assert code == 2
        assert "[1, 2, 3, 4]" in capsys.readouterr().err

    def test_schedule_for_more_shards_than_served(self, tmp_path, capsys):
        workload = _make_workload(tmp_path)
        faults = tmp_path / "shard-faults.json"
        assert (
            main(
                ["faults", "--shards", "4", "--seed", "5",
                 "--crash-rate", "0.95", "--horizon-s", "1.0",
                 "--output", str(faults)]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "serve", "--cluster", "m4.2xlarge",
                "--workload", str(workload),
                "--shards", "2", "--shard-faults", str(faults),
            ]
        )
        assert code == 2
        assert "shard" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--cluster", "m4.2xlarge", "--workload", "w.json",
             "--shards", "2", "--ring-replicas", "0"],
            ["serve", "--cluster", "m4.2xlarge", "--workload", "w.json",
             "--shards", "2", "--steal-backlog", "0"],
            ["serve", "--cluster", "m4.2xlarge", "--workload", "w.json",
             "--shards", "0"],
        ],
    )
    def test_bad_knobs_rejected_by_parser(self, argv):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
