"""Unit tests for the observability subsystem (repro.obs)."""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs import (
    ARTIFACT_FORMAT_VERSION,
    Histogram,
    MetricsRegistry,
    Observer,
    SimulatedClock,
    Tracer,
    counter_add,
    current,
    diff_runs,
    enabled,
    event,
    gauge_set,
    histogram_record,
    is_enabled,
    load_run_artifacts,
    span,
    summarize_run,
    write_run_artifacts,
)
from repro.obs.context import _NULL_SPAN
from repro.obs.metrics import flatten_jsonable, metric_key

# ---------------------------------------------------------------------- #
# Spans and the simulated clock
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_clock_is_monotonic(self):
        clock = SimulatedClock()
        ticks = [clock.advance() for _ in range(5)]
        assert ticks == [1, 2, 3, 4, 5]
        assert clock.ticks == 5

    def test_span_nesting_builds_a_forest(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner"):
                t.event("leaf")
        inner, leaf = t.named("inner")[0], t.named("leaf")[0]
        assert inner.parent_id == outer.span.span_id
        assert leaf.parent_id == inner.span_id
        assert t.named("outer")[0].parent_id is None
        assert [c.name for c in t.children_of(outer.span)] == ["inner"]

    def test_spans_close_in_order(self):
        t = Tracer()
        with t.span("a") as a:
            with t.span("b") as b:
                pass
        assert not a.span.is_open and not b.span.is_open
        assert a.span.start_tick < b.span.start_tick
        assert b.span.end_tick < a.span.end_tick

    def test_end_pops_unclosed_children(self):
        t = Tracer()
        outer = t.span("outer")
        t.span("orphan")  # never closed explicitly
        outer.close()
        assert all(not s.is_open for s in t.spans)

    def test_close_is_idempotent(self):
        t = Tracer()
        h = t.span("once")
        h.close()
        end = h.span.end_tick
        h.close()
        assert h.span.end_tick == end

    def test_event_is_zero_duration(self):
        t = Tracer()
        e = t.event("tick", value=3)
        assert e.start_tick == e.end_tick
        assert e.attributes == {"value": 3}

    def test_to_jsonable_coerces_numpy(self):
        t = Tracer()
        with t.span("s", arr=np.array([1, 2]), scalar=np.float64(1.5)):
            pass
        data = t.spans[0].to_jsonable()
        assert data["attributes"] == {"arr": [1, 2], "scalar": 1.5}
        json.dumps(data)  # fully serialisable


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #


class TestMetrics:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {}) == "m"
        assert metric_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"

    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("ops", app="pr").add(2)
        reg.counter("ops", app="pr").add(3)
        assert reg.counters == {"ops{app=pr}": 5.0}
        with pytest.raises(ValueError, match="increase"):
            reg.counter("ops", app="pr").add(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("rf").set(1.5)
        reg.gauge("rf").set(2.5)
        assert reg.gauges == {"rf": 2.5}

    def test_histogram_summary_and_percentiles(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0, 10.0]:
            h.record(v)
        s = h.summary()
        assert s["count"] == 5 and s["sum"] == 20.0
        assert s["min"] == 1.0 and s["max"] == 10.0
        assert s["p50"] == 3.0
        assert h.percentile(100) == 10.0

    def test_empty_histogram_summary(self):
        assert Histogram().summary()["count"] == 0
        assert Histogram().percentile(95) == 0.0

    def test_flat_and_flatten_agree(self):
        reg = MetricsRegistry()
        reg.counter("c").add(1)
        reg.gauge("g").set(2)
        reg.histogram("h").record(3)
        flat = reg.flat()
        assert flat == {"c": 1.0, "g": 2.0, "h.sum": 3.0, "h.count": 1.0}
        rows = flatten_jsonable(reg.to_jsonable())
        assert ("counter", "c", 1.0) in rows
        assert ("histogram", "h.sum", 3.0) in rows


# ---------------------------------------------------------------------- #
# Context: opt-in, no-op when dark
# ---------------------------------------------------------------------- #


class TestContext:
    def test_dark_by_default(self):
        assert current() is None
        assert not is_enabled()
        assert span("x") is _NULL_SPAN
        assert event("x") is None
        counter_add("c", 1)  # all silently ignored
        gauge_set("g", 1)
        histogram_record("h", 1)

    def test_null_span_is_inert(self):
        with span("dark") as s:
            s.set(anything=1)
        s.close()  # idempotent, no error

    def test_enabled_installs_and_restores(self):
        obs = Observer()
        with enabled(obs):
            assert current() is obs
            with span("s", k=1):
                counter_add("c", 2, app="x")
        assert current() is None
        assert obs.spans[0].name == "s"
        assert obs.metrics.counters == {"c{app=x}": 2.0}

    def test_enabled_is_reentrant(self):
        outer, inner = Observer(), Observer()
        with enabled(outer):
            with enabled(inner):
                event("in")
            event("out")
        assert [s.name for s in inner.spans] == ["in"]
        assert [s.name for s in outer.spans] == ["out"]

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with enabled(Observer()):
                raise RuntimeError("boom")
        assert current() is None


# ---------------------------------------------------------------------- #
# Run artifacts
# ---------------------------------------------------------------------- #


def _observed_run() -> Observer:
    obs = Observer()
    with enabled(obs):
        with span("work", phase="gather"):
            counter_add("engine.edge_ops", 10, app="pagerank")
            histogram_record("slack", 0.25)
        gauge_set("rf", 1.8)
    return obs


class TestArtifacts:
    def test_write_and_load_round_trip(self, tmp_path):
        obs = _observed_run()
        out = write_run_artifacts(
            obs, str(tmp_path / "run"), config={"app": "pagerank"}
        )
        run = load_run_artifacts(out)
        assert run.manifest["format_version"] == ARTIFACT_FORMAT_VERSION
        assert run.manifest["num_spans"] == len(obs.spans)
        assert run.config == {"app": "pagerank"}
        assert run.span_names() == {"work": 1}
        assert run.metrics["counters"] == {
            "engine.edge_ops{app=pagerank}": 10.0
        }
        assert run.trace is None

    def test_trace_artifact_persisted(self, tmp_path):
        class FakeTrace:
            def to_jsonable(self):
                return {"app": "x", "format_version": 1}

        out = write_run_artifacts(
            _observed_run(), str(tmp_path / "run"), trace=FakeTrace()
        )
        run = load_run_artifacts(out)
        assert run.trace == {"app": "x", "format_version": 1}
        assert "trace.json" in run.manifest["artifacts"]

    def test_load_rejects_non_run_dir(self, tmp_path):
        with pytest.raises(ReproError, match="manifest"):
            load_run_artifacts(str(tmp_path))

    def test_load_rejects_future_format(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format_version": 999})
        )
        with pytest.raises(ReproError, match="format"):
            load_run_artifacts(str(tmp_path))

    def test_summarize_run_rows(self, tmp_path):
        out = write_run_artifacts(
            _observed_run(), str(tmp_path / "run"), config={"seed": 3}
        )
        rows = summarize_run(out)
        sections = {r[0] for r in rows}
        assert {"run", "config", "spans", "counter", "gauge"} <= sections
        assert ("config", "seed", "3") in rows
        assert ("spans", "work", "1") in rows

    def test_diff_runs_aligns_and_subtracts(self, tmp_path):
        a = write_run_artifacts(_observed_run(), str(tmp_path / "a"))
        obs_b = Observer()
        with enabled(obs_b):
            with span("work"):
                counter_add("engine.edge_ops", 25, app="pagerank")
        b = write_run_artifacts(obs_b, str(tmp_path / "b"))

        rows = {r[0]: r for r in diff_runs(a, b)}
        key = "engine.edge_ops{app=pagerank}"
        assert rows[key][1:] == ("10", "25", "15")
        # The gauge only exists in run a.
        assert rows["rf"][2] == "-"
