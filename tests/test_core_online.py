"""Unit tests for repro.core.online (incremental CCR maintenance)."""

import numpy as np
import pytest

from repro.cluster.catalog import get_machine
from repro.cluster.cluster import Cluster
from repro.cluster.perfmodel import PerformanceModel
from repro.core.online import OnlineCCREstimator, OnlineCCRMonitor
from repro.core.profiler import ProxyProfiler
from repro.core.proxy import ProxySet
from repro.errors import ProfilingError


def perf():
    return PerformanceModel(model_scale=0.001)


def monitor(apps=("pagerank",)):
    return OnlineCCRMonitor(
        profiler=ProxyProfiler(proxies=ProxySet(num_vertices=1200, seed=61)),
        apps=apps,
    )


def cluster_of(*names):
    return Cluster([get_machine(n) for n in names], perf=perf())


class TestObserve:
    def test_first_observation_profiles(self):
        mon = monitor()
        update = mon.observe(cluster_of("c4.xlarge", "c4.2xlarge"))
        assert update.profiled
        assert set(update.new_types) == {"c4.xlarge", "c4.2xlarge"}

    def test_repeat_observation_free(self):
        """The paper: re-profiling only when machine types change."""
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge", "c4.2xlarge"))
        update = mon.observe(cluster_of("c4.xlarge", "c4.2xlarge"))
        assert update.was_free

    def test_composition_change_among_known_types_free(self):
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge", "c4.2xlarge"))
        update = mon.observe(
            cluster_of("c4.xlarge", "c4.xlarge", "c4.xlarge", "c4.2xlarge")
        )
        assert update.was_free

    def test_new_type_profiles_incrementally(self):
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge"))
        update = mon.observe(cluster_of("c4.xlarge", "c4.8xlarge"))
        assert update.profiled
        assert update.new_types == ("c4.8xlarge",)

    def test_update_history_recorded(self):
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge"))
        mon.observe(cluster_of("c4.xlarge"))
        assert len(mon.updates) == 2
        assert mon.updates[0].profiled and mon.updates[1].was_free


class TestPoolFor:
    def test_anchored_on_slowest_present(self):
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge", "c4.2xlarge", "c4.8xlarge"))
        # Drop the slowest type from the cluster: the anchor moves.
        small = cluster_of("c4.2xlarge", "c4.8xlarge")
        table = mon.pool_for(small).get("pagerank")
        assert table.ratio("c4.2xlarge") == pytest.approx(1.0)
        assert table.ratio("c4.8xlarge") > 1.0

    def test_consistent_with_direct_profiling(self):
        """Incremental observations reproduce a one-shot profile."""
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge"))
        mon.observe(cluster_of("c4.xlarge", "c4.2xlarge"))
        both = cluster_of("c4.xlarge", "c4.2xlarge")
        incremental = mon.pool_for(both).get("pagerank")
        direct = (
            ProxyProfiler(
                proxies=ProxySet(num_vertices=1200, seed=61), apps=("pagerank",)
            )
            .profile(both)
            .pool.get("pagerank")
        )
        assert incremental.ratio("c4.2xlarge") == pytest.approx(
            direct.ratio("c4.2xlarge"), rel=1e-9
        )

    def test_unobserved_type_rejected(self):
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge"))
        with pytest.raises(ProfilingError, match="not been observed"):
            mon.pool_for(cluster_of("c4.8xlarge"))


class TestOnlineEstimator:
    def test_weights_track_cluster_changes(self):
        est = OnlineCCREstimator(monitor=monitor())
        w1 = est.weights(cluster_of("c4.xlarge", "c4.2xlarge"), "pagerank")
        assert w1[1] > w1[0]
        # A machine joins the fleet; the next request covers it.
        w2 = est.weights(
            cluster_of("c4.xlarge", "c4.2xlarge", "c4.8xlarge"), "pagerank"
        )
        assert w2.size == 3
        assert w2.argmax() == 2

    def test_only_first_request_profiles(self):
        est = OnlineCCREstimator(monitor=monitor())
        c = cluster_of("c4.xlarge", "c4.2xlarge")
        est.weights(c, "pagerank")
        est.weights(c, "pagerank")
        profiled = [u.profiled for u in est.monitor.updates]
        assert profiled == [True, False]


class TestDegradation:
    def test_default_is_healthy(self):
        mon = monitor()
        assert mon.degradation("c4.xlarge") == 1.0
        assert mon.degradations == {}

    def test_degradation_reweights_without_reprofiling(self):
        mon = monitor()
        c = cluster_of("c4.xlarge", "c4.2xlarge")
        mon.observe(c)
        before = mon.pool_for(c).get("pagerank").ratio("c4.2xlarge")
        mon.report_degradation("c4.2xlarge", 4.0)
        after = mon.pool_for(c).get("pagerank").ratio("c4.2xlarge")
        # Proxy times scale up 4x -> capability ratio shrinks.
        assert after < before
        # No new profiling run was charged.
        assert [u.profiled for u in mon.updates] == [True]

    def test_degradation_compounds_and_clears(self):
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge"))
        mon.report_degradation("c4.xlarge", 2.0)
        mon.report_degradation("c4.xlarge", 3.0)
        assert mon.degradation("c4.xlarge") == pytest.approx(6.0)
        mon.clear_degradation("c4.xlarge")
        assert mon.degradation("c4.xlarge") == 1.0

    def test_speedup_rejected(self):
        mon = monitor()
        mon.observe(cluster_of("c4.xlarge"))
        with pytest.raises(ProfilingError):
            mon.report_degradation("c4.xlarge", 0.5)

    def test_unknown_type_rejected(self):
        mon = monitor()
        with pytest.raises(ProfilingError):
            mon.report_degradation("c4.8xlarge", 2.0)


class TestDeltaUpdates:
    """report_degradation interleaved with CCR refreshes (the streaming
    re-pricing path: observe -> degrade -> observe -> pool_for)."""

    def test_degradation_survives_incremental_observe(self):
        mon = monitor()
        c = cluster_of("c4.xlarge", "c4.2xlarge")
        mon.observe(c)
        mon.report_degradation("c4.2xlarge", 3.0)
        # A new type joins and is profiled; the degradation must not be
        # reset by the refresh.
        bigger = cluster_of("c4.xlarge", "c4.2xlarge", "c4.8xlarge")
        update = mon.observe(bigger)
        assert update.profiled and update.new_types == ("c4.8xlarge",)
        assert mon.degradation("c4.2xlarge") == pytest.approx(3.0)
        degraded = mon.pool_for(bigger).get("pagerank").ratio("c4.2xlarge")
        mon.clear_degradation("c4.2xlarge")
        assert mon.pool_for(bigger).get("pagerank").ratio(
            "c4.2xlarge"
        ) > degraded

    def test_interleaved_reports_compound_across_refreshes(self):
        mon = monitor()
        c = cluster_of("c4.xlarge", "c4.2xlarge")
        mon.observe(c)
        mon.report_degradation("c4.2xlarge", 2.0)
        mon.observe(c)  # free refresh between reports
        mon.report_degradation("c4.2xlarge", 2.0)
        mon.observe(c)
        assert mon.degradation("c4.2xlarge") == pytest.approx(4.0)

    def test_clear_restores_pre_degradation_tables_exactly(self):
        mon = monitor()
        c = cluster_of("c4.xlarge", "c4.2xlarge")
        mon.observe(c)
        before = mon.pool_for(c).get("pagerank").ratio("c4.2xlarge")
        mon.report_degradation("c4.2xlarge", 5.0)
        mon.observe(c)
        mon.clear_degradation("c4.2xlarge")
        after = mon.pool_for(c).get("pagerank").ratio("c4.2xlarge")
        # Degradation is applied at derive time, never destructively.
        assert after == before

    def test_pool_reflects_each_report_immediately(self):
        mon = monitor()
        c = cluster_of("c4.xlarge", "c4.2xlarge")
        mon.observe(c)
        # As c4.2xlarge degrades it eventually becomes the anchor, so pin
        # the *healthy* type's ratio: it can only grow as its peer slows.
        ratios = []
        for _ in range(3):
            mon.report_degradation("c4.2xlarge", 3.0)
            ratios.append(mon.pool_for(c).get("pagerank").ratio("c4.xlarge"))
        assert ratios[0] <= ratios[1] <= ratios[2]
        assert ratios[2] > ratios[0]

    def test_degrading_the_anchor_reanchors_the_table(self):
        mon = monitor()
        c = cluster_of("c4.xlarge", "c4.2xlarge")
        mon.observe(c)
        table = mon.pool_for(c).get("pagerank")
        assert table.ratio("c4.xlarge") == pytest.approx(1.0)
        # Throttle the fast type until it is the slowest present: the
        # Eq. 1 anchor follows the (degraded) capabilities.
        mon.report_degradation("c4.2xlarge", 100.0)
        table = mon.pool_for(c).get("pagerank")
        assert table.ratio("c4.2xlarge") == pytest.approx(1.0)
        assert table.ratio("c4.xlarge") > 1.0

    def test_streaming_reprices_after_mid_stream_degradation(self):
        """A monitor-backed streaming run re-derives targets per batch."""
        from repro.apps.registry import make_app
        from repro.partition import make_partitioner
        from repro.powerlaw.generator import generate_power_law_graph
        from repro.errors import StreamError
        from repro.streaming import StreamingSystem, generate_stream

        c = cluster_of("c4.xlarge", "c4.2xlarge")
        graph = generate_power_law_graph(num_vertices=200, alpha=2.1, seed=2)
        stream = generate_stream(
            graph, pattern="churn", num_batches=2, ops_per_batch=4, seed=1
        )
        mon = monitor()
        system = StreamingSystem(c, halo=1, monitor=mon)
        result = system.run(
            make_app("pagerank"), graph, stream,
            make_partitioner("hybrid", seed=7),
        )
        assert result.num_epochs == 3
        # Only the first weight derivation profiled; per-batch refreshes
        # among unchanged types were free.
        assert [u.profiled for u in mon.updates] == [True, False, False]
        with pytest.raises(StreamError, match="not both"):
            StreamingSystem(c, monitor=mon).run(
                make_app("pagerank"), graph, stream,
                make_partitioner("hybrid", seed=7),
                weights=np.array([1.0, 2.0]),
            )


def test_monitor_requires_apps():
    with pytest.raises(ProfilingError):
        OnlineCCRMonitor(apps=())
